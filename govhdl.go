// Package govhdl is a parallel and distributed VHDL simulator — a
// reproduction of "Parallel and Distributed VHDL Simulation" (Lungeanu &
// Shi, DATE 2000) and its lookahead-free self-adaptive synchronization
// protocol (ICCAD 1999).
//
// The simulator maps every post-elaboration VHDL signal and process onto a
// PDES logical process, orders the VHDL simulation cycle — including delta
// cycles — with the paper's (physical time, cycle/phase logical time)
// virtual-time pair, and synchronizes LPs with conservative, optimistic
// (Time Warp) or dynamically self-adapting protocols, locally across worker
// goroutines or distributed across machines over TCP.
//
// # Quick start
//
//	model, err := govhdl.Compile("tb", govhdl.Source{Name: "tb.vhd", Text: src})
//	res, err := model.Simulate(govhdl.Options{
//		Protocol: govhdl.Dynamic,
//		Workers:  8,
//		Until:    100 * govhdl.US,
//	})
//	for _, line := range res.TraceLines() {
//		fmt.Println(line)
//	}
//
// Gate-level designs can be built programmatically with the netlist builder
// (NewNetlist) or the paper's benchmark circuits (BenchmarkFSM,
// BenchmarkIIR, BenchmarkDCT).
package govhdl

import (
	"fmt"
	"io"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/kernel"
	"govhdl/internal/netlist"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vhdl"
	"govhdl/internal/vtime"
)

// Time is a physical simulation time in femtoseconds.
type Time = vtime.Time

// Standard time units.
const (
	FS = vtime.FS
	PS = vtime.PS
	NS = vtime.NS
	US = vtime.US
	MS = vtime.MS
)

// Protocol selects the synchronization protocol.
type Protocol = pdes.Protocol

// The available protocols (see the paper's four configurations).
const (
	Sequential   = pdes.ProtoSequential
	Conservative = pdes.ProtoConservative
	Optimistic   = pdes.ProtoOptimistic
	Mixed        = pdes.ProtoMixed
	Dynamic      = pdes.ProtoDynamic
)

// Source is one VHDL source file.
type Source struct {
	Name string
	Text string
}

// Options parameterizes a simulation run.
type Options struct {
	// Protocol is the synchronization protocol (default Dynamic).
	Protocol Protocol
	// Workers is the number of parallel workers (default 1; ignored for
	// Sequential).
	Workers int
	// Until is the exclusive simulation horizon (default 1ms).
	Until Time
	// NoTrace disables committed value-change recording (tracing is on by
	// default; disable it for large benchmark runs).
	NoTrace bool
	// Lookahead enables null messages (conservative acceleration).
	Lookahead bool
	// UserConsistent switches simultaneous-event handling from the
	// arbitrary-order model to the user-consistent model (Fig. 4).
	UserConsistent bool
	// ThrottleWindow bounds optimistic execution to this much physical
	// time beyond GVT (0 = unbounded).
	ThrottleWindow Time
	// CheckpointEvery is the optimistic state-saving interval (default 1).
	CheckpointEvery int
	// MemBudget, when positive, bounds the approximate bytes of retained
	// optimistic state (rollback histories, snapshots); the engine throttles
	// and cancels back to stay under it.
	MemBudget int64
	// StallTimeout, when positive, arms the GVT stall watchdog: a run whose
	// committed GVT stops advancing for this long fails with a diagnostic
	// instead of hanging.
	StallTimeout time.Duration
	// Rebalance enables live LP migration between workers at GVT rounds:
	// when one worker's committed-event load sustains above another's, the
	// controller moves LPs at the next quiescent cut. Committed traces are
	// unaffected (migration changes placement, never event order); the
	// Result metrics count the moves. Needs Workers >= 2.
	Rebalance bool
}

func (o Options) config() pdes.Config {
	cfg := pdes.Config{
		Workers:         o.Workers,
		Protocol:        o.Protocol,
		Lookahead:       o.Lookahead,
		ThrottleWindow:  o.ThrottleWindow,
		CheckpointEvery: o.CheckpointEvery,
		MemBudget:       o.MemBudget,
		StallTimeout:    o.StallTimeout,
	}
	if o.UserConsistent {
		cfg.Ordering = pdes.OrderUserConsistent
	}
	if o.Rebalance {
		// Migration ships LP state as gob-encoded checkpoint blobs, so the
		// payload types must be registered even for in-process runs.
		transport.RegisterGob()
		// In-process runs are short compared to cluster runs, so the policy
		// thresholds are aggressive: any sustained >10% imbalance moves an LP,
		// re-evaluated every round.
		cfg.Migrate = pdes.NewBalancePlanner(pdes.BalanceConfig{
			Ratio: 1.1, Cooldown: 1, MaxMoves: 2, MinEvents: 1,
		})
	}
	return cfg
}

// Model is an elaborated design ready to simulate.
type Model struct {
	Design *kernel.Design
	sys    *pdes.System
}

// Compile parses the sources, elaborates the hierarchy under the top
// entity, and returns a simulatable model.
func Compile(top string, sources ...Source) (*Model, error) {
	lib := vhdl.NewLibrary()
	for _, s := range sources {
		if err := lib.ParseAndAdd(s.Name, s.Text); err != nil {
			return nil, err
		}
	}
	d, err := lib.Elaborate(top)
	if err != nil {
		return nil, err
	}
	return FromDesign(d), nil
}

// FromDesign wraps a programmatically built kernel design (see NewNetlist).
func FromDesign(d *kernel.Design) *Model {
	return &Model{Design: d, sys: d.Build()}
}

// System exposes the underlying PDES system (LP names, fan-in/out).
func (m *Model) System() *pdes.System { return m.sys }

// LPs returns the number of logical processes: one per signal plus one per
// process, as in the paper.
func (m *Model) LPs() int { return m.Design.NumLPs() }

// Result is the outcome of a simulation run.
type Result struct {
	// Run carries the engine-level outcome: final GVT, protocol metrics,
	// modeled makespan and wall time.
	Run *pdes.Result
	// Trace holds the committed value changes (nil with Options.NoTrace).
	Trace *trace.Recorder

	model *Model
}

// Simulate runs the model once. A model's signal and process state is
// mutated by the run; build a fresh Model to simulate again from time zero.
func (m *Model) Simulate(o Options) (*Result, error) {
	if o.Until == 0 {
		o.Until = 1 * MS
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	var rec *trace.Recorder
	var sink pdes.TraceSink
	if !o.NoTrace {
		rec = trace.NewRecorder()
		sink = rec
	}
	var res *pdes.Result
	var err error
	if o.Protocol == Sequential {
		res, err = pdes.RunSequential(m.sys, o.Until, sink)
	} else {
		res, err = pdes.Run(m.sys, o.config(), o.Until, sink)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Run: res, Trace: rec, model: m}, nil
}

// TraceLines renders the committed value changes deterministically.
func (r *Result) TraceLines() []string {
	if r.Trace == nil {
		return nil
	}
	return r.Trace.Lines(r.model.sys)
}

// WriteVCD dumps the run as a Value Change Dump for waveform viewers.
func (r *Result) WriteVCD(w io.Writer) error {
	if r.Trace == nil {
		return fmt.Errorf("govhdl: the run was traced with NoTrace")
	}
	return trace.WriteVCD(w, r.model.sys, r.Trace, r.model.Design.Name)
}

// SignalValue returns the named signal's effective value after a run.
func (m *Model) SignalValue(name string) (any, bool) {
	for _, s := range m.Design.Signals() {
		if s.Name == name {
			return m.Design.Effective(s), true
		}
	}
	return nil, false
}

// SignalNames lists the design's signals.
func (m *Model) SignalNames() []string {
	out := make([]string, 0, m.Design.NumSignals())
	for _, s := range m.Design.Signals() {
		out = append(out, s.Name)
	}
	return out
}

// ---- Programmatic design construction ----

// Netlist is the gate-level circuit builder.
type Netlist = netlist.Builder

// NewNetlist returns a builder for a gate-level design in which every gate
// has the given inertial delay.
func NewNetlist(name string, gateDelay Time) *Netlist {
	return netlist.New(name, gateDelay)
}

// ---- The paper's benchmark circuits ----

// Benchmark is one of the paper's evaluation circuits with its bit-true
// verification model.
type Benchmark = circuits.Circuit

// BenchmarkFSM builds the zero-delay FSM ensemble of the paper's Fig. 5
// (machines <= 0 selects the paper's ~553-LP size).
func BenchmarkFSM(machines int) *Benchmark {
	return circuits.BuildFSM(circuits.FSMOpts{Machines: machines})
}

// BenchmarkIIR builds the gate-level Gray-Markel lattice IIR filter of
// Fig. 7 (zero values select the paper's size).
func BenchmarkIIR(sections, width int) *Benchmark {
	return circuits.BuildIIR(circuits.IIROpts{Sections: sections, Width: width})
}

// BenchmarkDCT builds the gate-level DCT processor of Fig. 9 (zero values
// select the paper's size).
func BenchmarkDCT(macs, width int) *Benchmark {
	return circuits.BuildDCT(circuits.DCTOpts{MACs: macs, Width: width})
}
