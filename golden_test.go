package govhdl

// Golden tests: complete VHDL designs from testdata/, compiled through the
// public API, simulated under several protocols and checked against expected
// behaviour — and against each other (every protocol's committed trace must
// match the sequential one).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/stdlogic"
)

func loadDesign(t *testing.T, file, top string) *Model {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(top, Source{Name: file, Text: string(src)})
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return m
}

func TestGoldenShifter(t *testing.T) {
	until := 100 * NS
	var want []string
	for i, proto := range []Protocol{Sequential, Conservative, Optimistic, Dynamic} {
		m := loadDesign(t, "shifter.vhd", "shifter_tb")
		res, err := m.Simulate(Options{Protocol: proto, Workers: 3, Until: until})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		lines := res.TraceLines()
		if i == 0 {
			want = lines
			// The edge at 5ns loads 10010011; later edges shift left:
			// 00100110 at 15ns, 01001100 at 25ns, ...
			joined := strings.Join(lines, "\n")
			for _, expect := range []string{
				`"10010011"`, `"00100110"`, `"01001100"`, `"10011000"`,
			} {
				if !strings.Contains(joined, expect) {
					t.Fatalf("missing %s in trace:\n%s", expect, joined)
				}
			}
			continue
		}
		if strings.Join(lines, "\n") != strings.Join(want, "\n") {
			t.Errorf("%v: trace differs from sequential (%d vs %d lines)",
				proto, len(lines), len(want))
		}
	}
}

func TestGoldenGrayMonitor(t *testing.T) {
	m := loadDesign(t, "gray.vhd", "gray")
	res, err := m.Simulate(Options{Protocol: Dynamic, Workers: 4, Until: 200 * NS})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.TraceLines(), "\n")
	if strings.Contains(joined, "more than one bit") {
		t.Fatalf("gray-code invariant violated:\n%s", joined)
	}
	// 20 rising edges (5, 15, ..., 195 ns): bin = 20 mod 16 = 4, whose
	// Gray code is 0110.
	v, ok := m.SignalValue("gray.code")
	if !ok {
		t.Fatal("code signal not found")
	}
	if got := v.(stdlogic.Vec); !got.Equal(stdlogic.MustVec("0110")) {
		t.Errorf("final gray code %v, want 0110", got)
	}
}
