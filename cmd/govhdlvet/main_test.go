package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// The tests run with the package directory (cmd/govhdlvet) as the working
// directory, so module import paths are the stable way to name packages.

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"unknown flag", []string{"-nope", "./..."}, 2},
		{"no packages", []string{}, 2},
		{"bad pattern", []string{"govhdl/internal/no/such/pkg"}, 2},
		{"unknown analyzer", []string{"-run", "bogus", "govhdl/internal/vtime"}, 2},
		{"list", []string{"-list"}, 0},
		{"clean package", []string{"govhdl/internal/vtime"}, 0},
		{"fixture package", []string{"govhdl/internal/analysis/testdata/src/nondet_core"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(c.args, &stdout, &stderr); got != c.exit {
				t.Errorf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					c.args, got, c.exit, stdout.String(), stderr.String())
			}
		})
	}
}

func TestUsageOnBadInput(t *testing.T) {
	for _, args := range [][]string{{}, {"./no/such/dir"}} {
		var stdout, stderr bytes.Buffer
		if got := run(args, &stdout, &stderr); got != 2 {
			t.Fatalf("run(%q) = %d, want 2", args, got)
		}
		if !strings.Contains(stderr.String(), "usage: govhdlvet") {
			t.Errorf("run(%q) stderr lacks usage:\n%s", args, stderr.String())
		}
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list) = %d, stderr:\n%s", got, stderr.String())
	}
	for _, name := range []string{"vtcompare", "nondeterminism", "maprange", "poolescape"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

// TestDiagnosticFormat locks the vet-style file:line:col: message [analyzer]
// output shape that editors and the CI log scraper rely on.
func TestDiagnosticFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"govhdl/internal/analysis/testdata/src/maprange_core"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	lineRE := regexp.MustCompile(`^.+\.go:\d+:\d+: .+ \[[a-z]+\]$`)
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no diagnostics printed")
	}
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Errorf("diagnostic line not in vet format: %q", l)
		}
	}
}

// TestRunFilter checks -run restricts the suite: the nondet fixture is full
// of nondeterminism findings, but none of them come from vtcompare.
func TestRunFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	got := run([]string{"-run", "vtcompare", "govhdl/internal/analysis/testdata/src/nondet_core"}, &stdout, &stderr)
	if got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", got, stdout.String())
	}
	var both bytes.Buffer
	if got := run([]string{"-run", "nondeterminism", "govhdl/internal/analysis/testdata/src/nondet_core"}, &both, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
}
