// Command govhdlvet runs govhdl's custom invariant-enforcing static
// analysis suite (internal/analysis) over the given package patterns:
//
//	go run ./cmd/govhdlvet ./...
//	go run ./cmd/govhdlvet -run vtcompare,maprange ./internal/pdes
//
// Diagnostics print in vet format (file:line:col: message [analyzer]) so
// editors can jump to them. Exit status: 0 when clean, 1 when any
// diagnostic was reported, 2 on usage or load errors.
//
// The enforced invariants, their analyzers, and the suppression directives
// (//govhdlvet:<directive> <justification>) are documented in DESIGN.md
// ("Static analysis & enforced invariants") and in the internal/analysis
// package docs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"govhdl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("govhdlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list = fs.Bool("list", false, "list the analyzers and exit")
		only = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: govhdlvet [-list] [-run analyzers] packages...\n")
		fmt.Fprintf(stderr, "packages: directories, import paths, or /... patterns (e.g. ./...)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error and usage
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s (suppress: //govhdlvet:%s)\n", a.Name, a.Doc, a.Directive)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "govhdlvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "govhdlvet: no packages named")
		fs.Usage()
		return 2
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, "govhdlvet:", err)
		return 2
	}
	paths, err := loader.Expand(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "govhdlvet:", err)
		fs.Usage()
		return 2
	}

	cfg := analysis.DefaultConfig()
	wd, _ := os.Getwd()
	var diags []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "govhdlvet:", err)
			return 2
		}
		diags = append(diags, analysis.Run(pkg, analyzers, cfg)...)
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		file := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", file, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
