// Command govhdld is the multi-tenant VHDL simulation server: a
// long-running HTTP service that accepts designs and stimulus, elaborates
// each distinct design once into a byte-bounded LRU cache, and multiplexes
// concurrent streaming simulation sessions over a bounded worker pool.
//
// Start it and submit the FSM benchmark:
//
//	govhdld -listen :9190 &
//	curl -s -X POST localhost:9190/v1/sessions \
//	    -d '{"circuit":"fsm","protocol":"mixed","workers":2}'
//	curl -sN localhost:9190/v1/sessions/s1/trace
//
// Submit VHDL sources (the second submit of the same sources is a cache
// hit: no re-elaboration):
//
//	curl -s -X POST localhost:9190/v1/sessions -d '{
//	    "top": "tb",
//	    "sources": [{"name": "tb.vhd", "text": "entity tb is ..."}],
//	    "protocol": "dynamic", "workers": 4, "until": "10us"}'
//
// See /metrics for cache hit/miss counters, pool occupancy and per-session
// result statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"govhdl/internal/server"
)

func main() {
	var (
		listen          = flag.String("listen", ":9190", "HTTP listen address")
		cacheBytes      = flag.Int64("cache-bytes", 64<<20, "design cache bound in bytes (LRU eviction)")
		maxSessions     = flag.Int("max-sessions", 4, "simulation sessions running concurrently")
		queueDepth      = flag.Int("queue", 16, "admitted sessions waiting for a slot before submits get 429")
		maxWorkers      = flag.Int("max-workers", 8, "per-session worker cap")
		defaultDeadline = flag.Duration("default-deadline", 2*time.Minute, "deadline for sessions that request none")
		maxDeadline     = flag.Duration("max-deadline", 10*time.Minute, "largest per-session deadline a request may ask for")
		maxFailovers    = flag.Int("max-failovers", 0, "transparent retries per session after recoverable transport faults (0 = engine default)")
	)
	flag.Parse()

	if err := run(*listen, server.Config{
		CacheBytes:      *cacheBytes,
		MaxSessions:     *maxSessions,
		QueueDepth:      *queueDepth,
		MaxWorkers:      *maxWorkers,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxFailovers:    *maxFailovers,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "govhdld:", err)
		os.Exit(1)
	}
}

func run(listen string, cfg server.Config) error {
	sv := server.New(cfg)
	httpSrv := &http.Server{Addr: listen, Handler: sv.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("govhdld: listening on %s (pool %d, queue %d, cache %d bytes)\n",
			listen, cfg.MaxSessions, cfg.QueueDepth, cfg.CacheBytes)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("govhdld: %v; draining sessions and shutting down\n", sig)
	}

	// Cancel every live session, then close the listener gracefully so
	// streaming clients see their final chunks.
	sv.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
