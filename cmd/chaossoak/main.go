// Command chaossoak runs the seeded chaos soak: a synthetic circuit and a
// randomized fault schedule are both derived from one seed, the engine runs
// every scheduled fault leg, and an invariant oracle checks each outcome —
// committed traces byte-identical to the sequential reference, monotonic
// GVT, counters consistent with the schedule, converging recovery logs.
//
// Everything a seed exposed is reproduced by rerunning the same seed:
//
//	chaossoak -seed 42 -lps 2000 -legs 6
//
// The verdict is written to stdout as JSON; the exit code is 0 only when
// every leg passed its oracle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"govhdl/internal/chaos"
)

func main() {
	var (
		opts    chaos.Options
		seed    int64
		stall   time.Duration
		ckptDir string
		pretty  bool
	)
	flag.Int64Var(&seed, "seed", 1, "soak seed: derives the circuit, the fault schedule, and every leg's parameters")
	flag.IntVar(&opts.LPs, "lps", 2000, "target LP count of the generated circuit (10^3..10^5)")
	flag.IntVar(&opts.Cycles, "cycles", 0, "simulation horizon in clock cycles (0 = default)")
	flag.IntVar(&opts.Legs, "legs", 0, "number of fault legs to run (0 = default; leg 0 is always the fault-free baseline)")
	flag.IntVar(&opts.Workers, "workers", 0, "workers per leg (0 = default)")
	flag.BoolVar(&opts.Kills, "kills", false, "fault mix: node kills + supervised failover")
	flag.BoolVar(&opts.Delays, "delays", false, "fault mix: randomized send delays")
	flag.BoolVar(&opts.Storms, "storms", false, "fault mix: live-migration storms at GVT cuts")
	flag.BoolVar(&opts.Squeezes, "squeezes", false, "fault mix: memory-budget squeezes")
	flag.BoolVar(&opts.Checkpoints, "checkpoints", false, "fault mix: checkpoint lineage churn + corrupt-latest drill")
	flag.BoolVar(&opts.Partitions, "partitions", false, "fault mix: asymmetric partitions / muted peers (designed stalls)")
	flag.DurationVar(&stall, "stall-timeout", 0, "watchdog timeout for designed-stall legs (0 = default)")
	flag.StringVar(&ckptDir, "ckpt-dir", "", "directory for checkpoint-churn lineages (default: a temp dir)")
	flag.BoolVar(&pretty, "pretty", true, "indent the JSON verdict")
	flag.Parse()

	opts.Seed = uint64(seed)
	opts.StallTimeout = stall
	opts.CheckpointDir = ckptDir
	if opts.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "chaossoak-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		opts.CheckpointDir = dir
	}

	start := time.Now()
	v, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}

	out := struct {
		*chaos.Verdict
		Elapsed string `json:"elapsed"`
	}{v, time.Since(start).Round(time.Millisecond).String()}
	enc := json.NewEncoder(os.Stdout)
	if pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}
	if !v.Ok {
		for _, l := range v.Legs {
			if l.Err != "" {
				fmt.Fprintf(os.Stderr, "chaossoak: leg %d (%s): %s\n", l.Index, l.Name, l.Err)
			}
		}
		fmt.Fprintf(os.Stderr, "chaossoak: FAILED — reproduce with -seed %d -lps %d\n", seed, opts.LPs)
		os.Exit(1)
	}
}
