// Command benchfigs regenerates every table and figure of the paper's
// evaluation section.
//
//	benchfigs               # all figures at paper scale (takes minutes)
//	benchfigs -fig 6        # just Figure 6 (the FSM speedup curves)
//	benchfigs -scale smoke  # fast reduced-scale versions
//	benchfigs -ablations    # the ablation sweeps from DESIGN.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"govhdl/internal/circuits"
	"govhdl/internal/figures"
	"govhdl/internal/pdes"
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate one figure (4, 6, 8 or 10); 0 = all")
		scaleStr  = flag.String("scale", "paper", "paper or smoke")
		ablations = flag.Bool("ablations", false, "run the ablation sweeps instead of the paper figures")
		wallclock = flag.Bool("wallclock", false, "run the wall-clock + allocation benchmark suite instead of the paper figures")
		wcOut     = flag.String("o", "BENCH_wallclock.json", "wall-clock mode: output JSON path")
		wcWorkers = flag.Int("workers", 4, "wall-clock mode: parallel worker count")
		wcReps    = flag.Int("reps", 3, "wall-clock mode: repetitions per cell (fastest kept)")
		wcGuard   = flag.Float64("guard", 0, "wall-clock mode: fail if dynamic exceeds this ratio of cons ns/event on any circuit, or a sharded config exceeds 2x the sequential oracle (0 = off)")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	scale := figures.ScalePaper
	switch *scaleStr {
	case "paper":
	case "smoke":
		scale = figures.ScaleSmoke
	default:
		fmt.Fprintf(os.Stderr, "benchfigs: unknown -scale %q (use paper or smoke)\n", *scaleStr)
		os.Exit(2)
	}
	var progress io.Writer = os.Stdout
	if *quiet {
		progress = nil
	}

	if *wallclock {
		if err := runWallClock(scale, *wcWorkers, *wcReps, *wcOut, *wcGuard, progress); err != nil {
			fmt.Fprintln(os.Stderr, "benchfigs:", err)
			os.Exit(1)
		}
		return
	}

	if *ablations {
		if err := runAblations(scale, os.Stdout, progress); err != nil {
			fmt.Fprintln(os.Stderr, "benchfigs:", err)
			os.Exit(1)
		}
		return
	}

	figsToRun := []int{4, 6, 8, 10}
	if *fig != 0 {
		figsToRun = []int{*fig}
	}
	for _, f := range figsToRun {
		var err error
		if f == 4 {
			err = figures.Fig4Table(scale, os.Stdout)
		} else {
			err = figures.SpeedupFigure(f, scale, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfigs:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// wallClockFile is the on-disk shape of BENCH_wallclock.json: the baseline
// recorded before the zero-allocation work, and the current measurement.
// Re-running -wallclock preserves an existing baseline and replaces current,
// so the file tracks the perf trajectory across PRs.
type wallClockFile struct {
	Baseline *stats.WallClockReport `json:"baseline,omitempty"`
	Current  *stats.WallClockReport `json:"current,omitempty"`
}

// runWallClock measures the wall-clock suite and merges the result into the
// JSON trajectory file at path. A nonzero guard turns the run into a perf
// gate: dynamic must stay within guard x cons ns/event on every circuit (the
// dynamic-adaptation regression check), and every sharded configuration must
// land within 2x the sequential oracle's ns/event.
func runWallClock(scale figures.Scale, workers, reps int, path string, guard float64, progress io.Writer) error {
	rep, err := figures.WallClockSuite(scale, workers, reps, progress)
	if err != nil {
		return err
	}
	var file wallClockFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("wallclock: existing %s is not valid JSON: %w", path, err)
		}
	}
	if file.Baseline == nil {
		file.Baseline = rep
	}
	file.Current = rep
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if base := file.Baseline.Find("FSM", "mixed"); base != nil {
		if cur := rep.Find("FSM", "mixed"); cur != nil && base.AllocsPerEvent > 0 {
			fmt.Fprintf(os.Stdout, "# FSM/mixed allocs/event: baseline %.2f -> current %.2f (%.0f%%)\n",
				base.AllocsPerEvent, cur.AllocsPerEvent, 100*cur.AllocsPerEvent/base.AllocsPerEvent)
		}
	}
	fmt.Fprintf(os.Stdout, "# wrote %s\n", path)
	if guard > 0 {
		if err := checkGuard(rep, guard); err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "# guard ok (ratio %.2f)\n", guard)
	}
	return nil
}

// checkGuard enforces the wall-clock perf gates on a fresh report:
//
//   - dynamic must stay within ratio x cons ns/event on every circuit (the
//     dynamic-adaptation regression gate);
//   - cons-shard and dynamic-shard must beat their unsharded bases — sharding
//     exists to remove protocol overhead, so losing to the config it wraps is
//     a regression at any scale;
//   - at paper scale, cons-shard and dynamic-shard must additionally land
//     within 2x of the sequential oracle's ns/event (small smoke circuits
//     cannot amortize the cross-shard cut, so the absolute gate only holds
//     where the paper's workloads live).
//
// opt-shard is exempt everywhere: it snapshots whole shards per event (heap
// plus every member state), a deliberate worst case kept in the sweep for
// trajectory data, not as a config anyone should run for speed.
func checkGuard(rep *stats.WallClockReport, ratio float64) error {
	gated := []struct{ name, base string }{{"cons-shard", "cons"}, {"dynamic-shard", "dynamic"}}
	for _, wc := range figures.WallClockCircuits() {
		cons, dyn := rep.Find(wc.Name, "cons"), rep.Find(wc.Name, "dynamic")
		if cons != nil && dyn != nil && cons.NsPerEvent > 0 && dyn.NsPerEvent > ratio*cons.NsPerEvent {
			return fmt.Errorf("guard: %s dynamic %.0f ns/event exceeds %.2fx cons %.0f ns/event",
				wc.Name, dyn.NsPerEvent, ratio, cons.NsPerEvent)
		}
		seq := rep.Find(wc.Name, "seq")
		for _, g := range gated {
			p := rep.Find(wc.Name, g.name)
			if p == nil {
				continue
			}
			if base := rep.Find(wc.Name, g.base); base != nil && base.NsPerEvent > 0 && p.NsPerEvent > base.NsPerEvent {
				return fmt.Errorf("guard: %s %s %.0f ns/event is slower than unsharded %s %.0f ns/event",
					wc.Name, g.name, p.NsPerEvent, g.base, base.NsPerEvent)
			}
			if rep.Scale == "paper" && seq != nil && seq.NsPerEvent > 0 && p.NsPerEvent > 2*seq.NsPerEvent {
				return fmt.Errorf("guard: %s %s %.0f ns/event exceeds 2x sequential oracle %.0f ns/event",
					wc.Name, g.name, p.NsPerEvent, seq.NsPerEvent)
			}
		}
	}
	return nil
}

// runAblations sweeps the engine design choices called out in DESIGN.md.
func runAblations(scale figures.Scale, out, progress io.Writer) error {
	build, until := figures.FSMCircuit(scale)

	sweep := func(title string, configs []figures.ConfigSpec) error {
		series, seqCost, err := figures.Speedup(build, until, []int{8}, configs, progress)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (FSM, 8 workers, sequential cost %.0f)\n", title, seqCost)
		for _, s := range series {
			fmt.Fprintf(out, "  %-24s speedup %.2f\n", s.Name, s.Rows[0].Speedup)
		}
		fmt.Fprintln(out)
		return nil
	}

	probe := build()
	throttle := func(mult vtime.Time) pdes.Config {
		return pdes.Config{Protocol: pdes.ProtoOptimistic, ThrottleWindow: mult * probe.ClockHalf}
	}
	if err := sweep("Ablation: optimism bound (throttle window)", []figures.ConfigSpec{
		{Name: "window=2half", Cfg: throttle(2)},
		{Name: "window=4half", Cfg: throttle(4)},
		{Name: "window=16half", Cfg: throttle(16)},
		{Name: "unbounded", Cfg: pdes.Config{Protocol: pdes.ProtoOptimistic, ThrottleWindow: ^vtime.Time(0) / 2}},
	}); err != nil {
		return err
	}

	ck := func(n int) pdes.Config {
		return pdes.Config{Protocol: pdes.ProtoOptimistic, CheckpointEvery: n,
			ThrottleWindow: 4 * probe.ClockHalf}
	}
	if err := sweep("Ablation: checkpoint interval", []figures.ConfigSpec{
		{Name: "every1", Cfg: ck(1)}, {Name: "every4", Cfg: ck(4)}, {Name: "every16", Cfg: ck(16)},
	}); err != nil {
		return err
	}

	part := func(p pdes.Partition) pdes.Config {
		return pdes.Config{Protocol: pdes.ProtoDynamic, Partition: p,
			ThrottleWindow: 4 * probe.ClockHalf}
	}
	if err := sweep("Ablation: LP partitioning", []figures.ConfigSpec{
		{Name: "roundrobin(paper)", Cfg: part(pdes.PartitionRoundRobin)},
		{Name: "block", Cfg: part(pdes.PartitionBlock)},
	}); err != nil {
		return err
	}

	gvt := func(n int) pdes.Config {
		return pdes.Config{Protocol: pdes.ProtoOptimistic, GVTEvery: n,
			ThrottleWindow: 4 * probe.ClockHalf}
	}
	if err := sweep("Ablation: GVT round period", []figures.ConfigSpec{
		{Name: "every256", Cfg: gvt(256)}, {Name: "every1024", Cfg: gvt(1024)},
		{Name: "every4096", Cfg: gvt(4096)},
	}); err != nil {
		return err
	}

	_ = circuits.FSMOpts{}
	_ = stats.Default()
	return nil
}
