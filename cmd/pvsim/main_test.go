package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/ckptio"
	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/runopts"
	"govhdl/internal/supervise"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vtime"
)

// Parse and Validate tables live with the shared package
// (internal/runopts); here we only cover pvsim's own wiring of them.

func TestRunRejectsBadFlags(t *testing.T) {
	base := func(mutate func(*runOpts)) runOpts {
		o := runOpts{Opts: runopts.Opts{Protocol: "dynamic", Workers: 1, SaveEvery: 1}}
		mutate(&o)
		return o
	}
	if err := run(base(func(o *runOpts) {})); err == nil {
		t.Error("run with nothing to simulate succeeded")
	}
	if err := run(base(func(o *runOpts) { o.Circuit = "nosuch" })); err == nil {
		t.Error("unknown circuit accepted")
	}
	if err := run(base(func(o *runOpts) { o.Circuit = "fsm"; o.Protocol = "warp9" })); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run(base(func(o *runOpts) {
		o.Circuit = "fsm"
		o.Protocol = "seq"
		o.CkptRounds = 1
		o.ckptFile = "x"
	})); err == nil {
		t.Error("checkpoint rounds under the sequential kernel accepted")
	}
	if err := run(base(func(o *runOpts) {
		o.Circuit = "fsm"
		o.Protocol = "dyn"
		o.CkptRounds = 1
	})); err == nil {
		t.Error("checkpoint rounds without a checkpoint file accepted")
	}
	if err := run(base(func(o *runOpts) {
		o.Circuit = "fsm"
		o.Protocol = "dyn"
		o.Restore = "/nonexistent/ck"
	})); err == nil {
		t.Error("restore from a missing file accepted")
	}
	// A combination the shared validator rejects must also fail through run.
	if err := run(base(func(o *runOpts) {
		o.Circuit = "fsm"
		o.Protocol = "dyn"
		o.StallPolicy = "panic"
	})); err == nil || !strings.Contains(err.Error(), "-stall-policy") {
		t.Errorf("shared validation not wired through run: %v", err)
	}
}

// TestCheckpointLineageThroughCLI covers pvsim's ckptio wiring: the sink's
// writes rotate a generation lineage, a torn .tmp from a crashed write never
// leaks into a read, and -restore's SeedFromLineage falls back past a
// corrupted newest generation to the previous cut.
func TestCheckpointLineageThroughCLI(t *testing.T) {
	transport.RegisterGob()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ck")
	tmp := path + ".tmp"

	ckA := &pdes.Checkpoint{Format: 1, GVT: vtime.VT{PT: 100}, Workers: 2, NumLPs: 4}
	if err := ckptio.Write(path, 3, &ckptio.File{Ckpt: ckA}); err != nil {
		t.Fatalf("write A: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived a successful write: %v", err)
	}

	// Simulate a crash mid-write: garbage .tmp next to the good file.
	if err := os.WriteFile(tmp, []byte("torn half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ckptio.Read(path)
	if err != nil {
		t.Fatalf("good checkpoint unreadable with a torn .tmp present: %v", err)
	}
	if !got.Ckpt.GVT.Equal(ckA.GVT) {
		t.Fatalf("torn .tmp leaked into the read: GVT %v", got.Ckpt.GVT)
	}

	// The next write rotates A into generation 1, supersedes the torn temp,
	// and round-trips the sharding metadata -restore depends on.
	ckB := &pdes.Checkpoint{Format: 1, GVT: vtime.VT{PT: 200}, Workers: 2, NumLPs: 4}
	if err := ckptio.Write(path, 3, &ckptio.File{
		Ckpt: ckB, Trace: []trace.Entry{{LP: 1, TS: vtime.VT{PT: 50}, Item: "x"}},
		Shards: 4, Partition: "topo",
	}); err != nil {
		t.Fatalf("write B over torn tmp: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived write B: %v", err)
	}
	got, err = ckptio.Read(path)
	if err != nil {
		t.Fatalf("read B: %v", err)
	}
	if !got.Ckpt.GVT.Equal(ckB.GVT) || len(got.Trace) != 1 {
		t.Fatalf("read back GVT %v with %d entries, want %v with 1", got.Ckpt.GVT, len(got.Trace), ckB.GVT)
	}
	if got.Shards != 4 || got.Partition != "topo" {
		t.Fatalf("sharding metadata = (%d, %q), want (4, \"topo\")", got.Shards, got.Partition)
	}

	// Corrupt the newest image: the restore path must reject it with a
	// positioned diagnosis and fall back to generation 1 (checkpoint A).
	if err := faultinject.CorruptFile(path, 3, 48, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := ckptio.Read(path); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("corrupt file error = %v", err)
	}
	sup := &supervise.Supervisor{}
	cf, gen, skipped, err := sup.SeedFromLineage(path)
	if err != nil {
		t.Fatalf("SeedFromLineage: %v", err)
	}
	if gen != ckptio.GenPath(path, 1) || !cf.Ckpt.GVT.Equal(ckA.GVT) {
		t.Fatalf("recovered %v from %s, want checkpoint A from generation 1", cf.Ckpt.GVT, gen)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v, want exactly the corrupt newest generation", skipped)
	}
}
