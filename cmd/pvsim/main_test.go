package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/vtime"
)

func TestParseTime(t *testing.T) {
	cases := map[string]vtime.Time{
		"100ns": 100 * vtime.NS,
		"2us":   2 * vtime.US,
		"1ms":   1 * vtime.MS,
		"5ps":   5 * vtime.PS,
		"7fs":   7,
		"3sec":  3 * vtime.S,
		"42":    42,
	}
	for in, want := range cases {
		got, err := parseTime(in)
		if err != nil || got != want {
			t.Errorf("parseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "ns", "1.5ns", "x42", "10 ns"} {
		if _, err := parseTime(bad); err == nil {
			t.Errorf("parseTime(%q) accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(runOpts{protocol: "dynamic", workers: 1, saveEvery: 1}); err == nil {
		t.Error("run with nothing to simulate succeeded")
	}
	if err := run(runOpts{circuit: "nosuch", protocol: "dynamic", workers: 1, saveEvery: 1}); err == nil {
		t.Error("unknown circuit accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "warp9", workers: 1, saveEvery: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "seq", workers: 1, saveEvery: 1, ckptRounds: 1, ckptFile: "x"}); err == nil {
		t.Error("checkpoint rounds under the sequential kernel accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "dyn", workers: 1, saveEvery: 1, ckptRounds: 1}); err == nil {
		t.Error("checkpoint rounds without a checkpoint file accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "dyn", workers: 1, saveEvery: 1, restore: "/nonexistent/ck"}); err == nil {
		t.Error("restore from a missing file accepted")
	}
}

func TestValidateRunOpts(t *testing.T) {
	// Baseline options that pass validation, mutated per case below.
	base := func() runOpts {
		return runOpts{stallPolicy: "fail"}
	}
	cases := []struct {
		name    string
		mutate  func(*runOpts)
		proto   pdes.Protocol
		wantErr string
	}{
		{"baseline ok", func(o *runOpts) {}, pdes.ProtoDynamic, ""},
		{"restore with kill-writes", func(o *runOpts) {
			o.restore = "ck"
			o.faultKillWrites = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"restore with die-sends", func(o *runOpts) {
			o.restore = "ck"
			o.faultDieSends = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"restore with mute-sends", func(o *runOpts) {
			o.restore = "ck"
			o.faultMuteSends = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"fabric fault under seq", func(o *runOpts) {
			o.faultDieSends = 10
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"failover without checkpointing", func(o *runOpts) {
			o.failover = true
		}, pdes.ProtoDynamic, "-failover needs -checkpoint-rounds"},
		{"failover on a connect worker", func(o *runOpts) {
			o.failover = true
			o.ckptRounds = 1
			o.connect = "host:1"
			o.endpoints = 3
		}, pdes.ProtoDynamic, "controller's process"},
		{"failover under seq", func(o *runOpts) {
			o.failover = true
			o.ckptRounds = 1
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"failover ok", func(o *runOpts) {
			o.failover = true
			o.ckptRounds = 1
		}, pdes.ProtoDynamic, ""},
		{"bad stall policy", func(o *runOpts) {
			o.stallPolicy = "panic"
		}, pdes.ProtoDynamic, "-stall-policy"},
		{"negative stall timeout", func(o *runOpts) {
			o.stallTimeout = -time.Second
		}, pdes.ProtoDynamic, "-stall-timeout"},
		{"negative mem budget", func(o *runOpts) {
			o.memBudget = -1
		}, pdes.ProtoDynamic, "-mem-budget"},
		{"distributed without endpoints", func(o *runOpts) {
			o.listen = ":0"
		}, pdes.ProtoDynamic, "-endpoints >= 2"},
		{"sharded ok", func(o *runOpts) {
			o.shards = 4
			o.workers = 4
		}, pdes.ProtoDynamic, ""},
		{"sharded topo ok", func(o *runOpts) {
			o.shards = 8
			o.workers = 4
			o.partition = "topo"
		}, pdes.ProtoConservative, ""},
		{"partition without shards ok", func(o *runOpts) {
			o.partition = "rr"
			o.workers = 2
		}, pdes.ProtoOptimistic, ""},
		{"negative shards", func(o *runOpts) {
			o.shards = -1
		}, pdes.ProtoDynamic, "-shards must be >= 0"},
		{"bad partition name", func(o *runOpts) {
			o.partition = "metis"
		}, pdes.ProtoDynamic, "-partition must be"},
		{"shards under seq", func(o *runOpts) {
			o.shards = 2
			o.workers = 1
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"shards with user ordering", func(o *runOpts) {
			o.shards = 2
			o.workers = 1
			o.user = true
		}, pdes.ProtoDynamic, "-user"},
		{"shards with restore", func(o *runOpts) {
			o.shards = 2
			o.restore = "ck"
		}, pdes.ProtoDynamic, "recorded in the checkpoint"},
		{"partition with restore", func(o *runOpts) {
			o.partition = "topo"
			o.restore = "ck"
		}, pdes.ProtoDynamic, "recorded in the checkpoint"},
		{"more workers than shards", func(o *runOpts) {
			o.shards = 2
			o.workers = 4
		}, pdes.ProtoDynamic, "-workers <= -shards"},
		{"more distributed workers than shards", func(o *runOpts) {
			o.shards = 2
			o.workers = 1
			o.listen = ":0"
			o.endpoints = 4
		}, pdes.ProtoDynamic, "-workers <= -shards"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base()
			c.mutate(&o)
			err := validateRunOpts(&o, c.proto)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestCheckpointFileAtomicity covers the crash window between writing the
// temp file and renaming it: a leftover (even corrupt) .tmp must never be
// read, the previous good checkpoint must survive, and the next successful
// write must clean up and replace everything.
func TestCheckpointFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ck")
	tmp := path + ".tmp"

	ckA := &pdes.Checkpoint{Format: 1, GVT: vtime.VT{PT: 100}, Workers: 2, NumLPs: 4}
	if err := writeCheckpointFile(path, ckA, nil, 0, ""); err != nil {
		t.Fatalf("write A: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived a successful write: %v", err)
	}
	got, err := readCheckpointFile(path)
	if err != nil {
		t.Fatalf("read A: %v", err)
	}
	if got.Ckpt.GVT != ckA.GVT {
		t.Fatalf("read back GVT %v, want %v", got.Ckpt.GVT, ckA.GVT)
	}

	// Simulate a crash mid-write: garbage .tmp next to the good file.
	if err := os.WriteFile(tmp, []byte("torn half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = readCheckpointFile(path)
	if err != nil {
		t.Fatalf("good checkpoint unreadable with a torn .tmp present: %v", err)
	}
	if got.Ckpt.GVT != ckA.GVT {
		t.Fatalf("torn .tmp leaked into the read: GVT %v", got.Ckpt.GVT)
	}

	// The next write must supersede both the old image and the torn temp,
	// and round-trip the sharding metadata -restore depends on.
	ckB := &pdes.Checkpoint{Format: 1, GVT: vtime.VT{PT: 200}, Workers: 2, NumLPs: 4}
	if err := writeCheckpointFile(path, ckB, []trace.Entry{{LP: 1, TS: vtime.VT{PT: 50}, Item: "x"}}, 4, "topo"); err != nil {
		t.Fatalf("write B over torn tmp: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived write B: %v", err)
	}
	got, err = readCheckpointFile(path)
	if err != nil {
		t.Fatalf("read B: %v", err)
	}
	if got.Ckpt.GVT != ckB.GVT || len(got.Trace) != 1 {
		t.Fatalf("read back GVT %v with %d entries, want %v with 1", got.Ckpt.GVT, len(got.Trace), ckB.GVT)
	}
	if got.Shards != 4 || got.Partition != "topo" {
		t.Fatalf("sharding metadata = (%d, %q), want (4, \"topo\")", got.Shards, got.Partition)
	}

	// A corrupt main image must be diagnosed, not silently zero-valued.
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpointFile(path); err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("corrupt file error = %v", err)
	}
}
