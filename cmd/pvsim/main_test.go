package main

import (
	"testing"

	"govhdl/internal/vtime"
)

func TestParseTime(t *testing.T) {
	cases := map[string]vtime.Time{
		"100ns": 100 * vtime.NS,
		"2us":   2 * vtime.US,
		"1ms":   1 * vtime.MS,
		"5ps":   5 * vtime.PS,
		"7fs":   7,
		"3sec":  3 * vtime.S,
		"42":    42,
	}
	for in, want := range cases {
		got, err := parseTime(in)
		if err != nil || got != want {
			t.Errorf("parseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "ns", "1.5ns", "x42", "10 ns"} {
		if _, err := parseTime(bad); err == nil {
			t.Errorf("parseTime(%q) accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("", "", "dynamic", 1, "", false, false, "", 1, "", false, false, false, false,
		"", "", 0, "", nil); err == nil {
		t.Error("run with nothing to simulate succeeded")
	}
	if err := run("", "nosuch", "dynamic", 1, "", false, false, "", 1, "", false, false, false, false,
		"", "", 0, "", nil); err == nil {
		t.Error("unknown circuit accepted")
	}
	if err := run("", "fsm", "warp9", 1, "", false, false, "", 1, "", false, false, false, false,
		"", "", 0, "", nil); err == nil {
		t.Error("unknown protocol accepted")
	}
}
