package main

import (
	"testing"

	"govhdl/internal/vtime"
)

func TestParseTime(t *testing.T) {
	cases := map[string]vtime.Time{
		"100ns": 100 * vtime.NS,
		"2us":   2 * vtime.US,
		"1ms":   1 * vtime.MS,
		"5ps":   5 * vtime.PS,
		"7fs":   7,
		"3sec":  3 * vtime.S,
		"42":    42,
	}
	for in, want := range cases {
		got, err := parseTime(in)
		if err != nil || got != want {
			t.Errorf("parseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "ns", "1.5ns", "x42", "10 ns"} {
		if _, err := parseTime(bad); err == nil {
			t.Errorf("parseTime(%q) accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(runOpts{protocol: "dynamic", workers: 1, saveEvery: 1}); err == nil {
		t.Error("run with nothing to simulate succeeded")
	}
	if err := run(runOpts{circuit: "nosuch", protocol: "dynamic", workers: 1, saveEvery: 1}); err == nil {
		t.Error("unknown circuit accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "warp9", workers: 1, saveEvery: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "seq", workers: 1, saveEvery: 1, ckptRounds: 1, ckptFile: "x"}); err == nil {
		t.Error("checkpoint rounds under the sequential kernel accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "dyn", workers: 1, saveEvery: 1, ckptRounds: 1}); err == nil {
		t.Error("checkpoint rounds without a checkpoint file accepted")
	}
	if err := run(runOpts{circuit: "fsm", protocol: "dyn", workers: 1, saveEvery: 1, restore: "/nonexistent/ck"}); err == nil {
		t.Error("restore from a missing file accepted")
	}
}
