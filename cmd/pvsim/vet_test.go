package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"govhdl/internal/runopts"
	"govhdl/internal/server"
)

func lintFixture(name string) string {
	return filepath.Join("..", "..", "internal", "vhdl", "lint", "testdata", name)
}

func vetOpts(files ...string) runOpts {
	o := runOpts{Opts: runopts.Opts{Protocol: "dynamic", Workers: 1, SaveEvery: 1}}
	o.Vet = true
	o.files = files
	return o
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what fn wrote.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	w.Close()
	return <-done
}

func TestRunVetExitCodes(t *testing.T) {
	broken := filepath.Join(t.TempDir(), "broken.vhd")
	if err := os.WriteFile(broken, []byte("entity oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*runOpts)
		files  []string
		want   int
	}{
		{"clean design", nil, []string{lintFixture("clean_unused.vhd")}, 0},
		{"warnings pass by default", nil, []string{lintFixture("bad_unused.vhd")}, 0},
		{"warnings fail under strict", func(o *runOpts) { o.VetStrict = true }, []string{lintFixture("bad_unused.vhd")}, 1},
		{"errors fail", nil, []string{lintFixture("bad_multidriver.vhd")}, 1},
		{"no files", nil, nil, 2},
		{"missing file", nil, []string{lintFixture("nosuch.vhd")}, 2},
		{"parse error", nil, []string{broken}, 2},
		{"vet with circuit", func(o *runOpts) { o.Circuit = "fsm" }, []string{lintFixture("clean_unused.vhd")}, 2},
		{"bad protocol still rejected", func(o *runOpts) { o.Protocol = "warp9" }, []string{lintFixture("clean_unused.vhd")}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := vetOpts(tc.files...)
			if tc.mutate != nil {
				tc.mutate(&o)
			}
			if got := runVet(o); got != tc.want {
				t.Errorf("exit = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestVetJSONMatchesServerLintEndpoint pins the acceptance guarantee: for
// the same sources under the same names, `pvsim -vet-json` and govhdld's
// POST /v1/lint emit byte-identical reports.
func TestVetJSONMatchesServerLintEndpoint(t *testing.T) {
	sv := server.New(server.Config{})
	ts := httptest.NewServer(sv.Handler())
	defer func() {
		sv.Shutdown()
		ts.Close()
	}()

	for _, name := range []string{"bad_multidriver.vhd", "bad_unused.vhd", "clean_unused.vhd"} {
		t.Run(name, func(t *testing.T) {
			path := lintFixture(name)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			o := vetOpts(path)
			o.vetJSON = true
			cli := captureStdout(t, func() { runVet(o) })

			body, _ := json.Marshal(server.LintRequest{
				Sources: []server.SourceRequest{{Name: path, Text: string(src)}},
			})
			resp, err := http.Post(ts.URL+"/v1/lint", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("lint endpoint: status %d", resp.StatusCode)
			}
			srv, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(cli, srv) {
				t.Errorf("CLI and server reports differ:\nCLI:\n%s\nserver:\n%s", cli, srv)
			}
		})
	}
}
