// Command pvsim is the parallel/distributed VHDL simulator CLI.
//
// Simulate a VHDL testbench on 8 workers with the dynamic protocol:
//
//	pvsim -top tb -protocol dynamic -workers 8 -until 10us design.vhd
//
// Simulate a built-in benchmark circuit and dump a VCD:
//
//	pvsim -circuit fsm -workers 4 -vcd fsm.vcd
//
// Distributed simulation across two machines (both need the same sources):
//
//	host A: pvsim -top tb -listen :9190 -endpoints 3 -hosted 0,1 design.vhd
//	host B: pvsim -top tb -connect hostA:9190 -endpoints 3 -hosted 2 design.vhd
//
// Fault-tolerant operation: checkpoint every committed GVT round and, after
// a crash, resume from the saved cut with the complete trace preserved:
//
//	pvsim -circuit fsm -workers 4 -checkpoint-file fsm.ck -checkpoint-rounds 1
//	pvsim -circuit fsm -workers 4 -restore fsm.ck
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/ckptio"
	"govhdl/internal/faultinject"
	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/runopts"
	"govhdl/internal/supervise"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
	"govhdl/internal/vtime"
)

// runOpts carries every CLI tunable into run. The shared surface (the
// tunables govhdld also exposes, and their validation) lives in
// internal/runopts; the fields here are pvsim-only.
type runOpts struct {
	runopts.Opts

	vcd       string
	showTrace bool
	showStats bool
	verify    bool
	compare   bool
	vetJSON   bool

	gvtAdapt bool

	hosted     string
	gvtEvery   int
	hbInterval time.Duration
	hbTimeout  time.Duration

	ckptFile string
	ckptKeep int

	maxFailovers int

	faultSeed int64

	files []string
}

func main() {
	var o runOpts
	flag.StringVar(&o.Top, "top", "", "top entity to elaborate (with VHDL files)")
	flag.StringVar(&o.Circuit, "circuit", "", "built-in benchmark circuit: fsm, iir or dct")
	flag.StringVar(&o.Protocol, "protocol", "dynamic", "seq, cons, opt, mixed or dynamic")
	flag.IntVar(&o.Workers, "workers", 1, "number of parallel workers")
	flag.StringVar(&o.Until, "until", "", "simulation horizon, e.g. 100ns, 2us (default: circuit default or 1ms)")
	flag.BoolVar(&o.Lookahead, "lookahead", false, "enable null messages (conservative lookahead)")
	flag.BoolVar(&o.User, "user", false, "user-consistent simultaneous-event ordering")
	flag.StringVar(&o.Throttle, "throttle", "", "optimism bound beyond GVT, e.g. 40ns (0 = unbounded)")
	flag.IntVar(&o.SaveEvery, "checkpoint", 1, "optimistic state-saving interval (events per snapshot)")
	flag.StringVar(&o.vcd, "vcd", "", "write a value change dump to this file")
	flag.BoolVar(&o.showTrace, "trace", false, "print committed value changes")
	flag.BoolVar(&o.showStats, "stats", true, "print protocol metrics")
	flag.BoolVar(&o.verify, "verify", true, "verify built-in circuits against their reference models")
	flag.BoolVar(&o.compare, "compare", false, "also run the sequential kernel and require identical committed traces")
	flag.BoolVar(&o.Vet, "vet", false, "lint the VHDL design instead of simulating: exit 0 if clean, 1 on error findings, 2 on usage/parse errors")
	flag.BoolVar(&o.VetStrict, "vet-strict", false, "like -vet, but warning findings also exit 1")
	flag.BoolVar(&o.vetJSON, "vet-json", false, "with -vet: write the report as JSON to stdout instead of vet lines to stderr")

	flag.StringVar(&o.Listen, "listen", "", "distributed: listen address (this process hosts the controller)")
	flag.StringVar(&o.Connect, "connect", "", "distributed: hub address to join")
	flag.IntVar(&o.Endpoints, "endpoints", 0, "distributed: total endpoint count (controller + workers)")
	flag.StringVar(&o.hosted, "hosted", "", "distributed: comma-separated endpoint ids hosted here")
	flag.IntVar(&o.Shards, "shards", 0, "cluster LPs into this many shards that execute sequentially inside the shard, with the PDES protocol running only between shards (0 = no sharding, one LP per signal/process)")
	flag.StringVar(&o.Partition, "partition", "", "LP-to-worker / shard-membership partitioning: rr (round-robin), block, or topo (graph-aware edge-cut); default topo when -shards is set, rr otherwise")
	flag.IntVar(&o.gvtEvery, "gvt-every", 0, "events per worker between GVT round requests (0 = engine default)")
	flag.BoolVar(&o.gvtAdapt, "gvt-adapt", false, "retune the GVT cadence each round from observed cut traffic (bounded by 16x the base interval)")
	flag.DurationVar(&o.hbInterval, "hb-interval", time.Second, "distributed: heartbeat interval (<=0 disables liveness checking)")
	flag.DurationVar(&o.hbTimeout, "hb-timeout", 5*time.Second, "distributed: declare a silent peer dead after this long")

	flag.StringVar(&o.ckptFile, "checkpoint-file", "", "write a GVT-consistent checkpoint (with the trace-so-far) to this file, atomically, at every cut")
	flag.IntVar(&o.ckptKeep, "checkpoint-keep", 3, "checkpoint generations to keep on disk (file, file.1, ...); -restore falls back past corrupt newer generations")
	flag.IntVar(&o.CkptRounds, "checkpoint-rounds", 0, "committed GVT rounds between checkpoint cuts (default 1 when -checkpoint-file is set; pass the same value to every distributed process)")
	flag.StringVar(&o.Restore, "restore", "", "resume from a checkpoint file written by -checkpoint-file (every distributed process needs the file)")

	flag.BoolVar(&o.Failover, "failover", false, "on a transport failure, automatically absorb the dead node's LPs and resume from the latest checkpoint (controller process only; needs checkpointing)")
	flag.IntVar(&o.maxFailovers, "max-failovers", supervise.DefaultMaxFailovers, "give up after this many automatic failovers")
	flag.StringVar(&o.MigratePolicy, "migrate-policy", "", "live LP migration at GVT rounds: off, on-death (recovery migrates the dead node's LPs onto the survivors) or balance (sustained load imbalance triggers rebalancing moves)")
	flag.IntVar(&o.MinNodes, "min-nodes", 0, "with -migrate-policy=on-death: migrate only while at least this many cluster nodes survive; below it recovery falls back to a full local absorb")
	flag.DurationVar(&o.StallTimeout, "stall-timeout", 0, "fail (or rescue, see -stall-policy) the run if committed GVT does not advance for this long; 0 disables the watchdog")
	flag.StringVar(&o.StallPolicy, "stall-policy", "fail", "stall remedy: fail (dump diagnostics and exit nonzero) or force-opt (force the blocked conservative LP optimistic, then fail if still stuck)")
	flag.Int64Var(&o.MemBudget, "mem-budget", 0, "bound tracked optimistic memory (events, snapshots, anti-message records) to this many bytes; 0 = unbounded")

	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault injection: PRNG seed (replayable schedules)")
	flag.IntVar(&o.FaultKillWrites, "fault-kill-writes", 0, "fault injection, distributed: hard-close this process's connection after N writes")
	flag.IntVar(&o.FaultDieSends, "fault-die-sends", 0, "fault injection, single-process: kill the fabric after N sends from any endpoint")
	flag.IntVar(&o.FaultMuteSends, "fault-mute-sends", 0, "fault injection, single-process: silently drop each endpoint's sends after its Nth (stalls the run without killing it)")
	flag.Parse()
	o.files = flag.Args()

	if o.VetStrict || o.vetJSON {
		o.Vet = true
	}
	if o.Vet {
		os.Exit(runVet(o))
	}

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "pvsim:", err)
		os.Exit(1)
	}
}

// runVet is the -vet mode: parse the given VHDL files, run every registered
// design-lint rule, report, and exit without simulating. Exit codes follow
// govhdlvet: 0 clean (or warnings without -vet-strict), 1 findings, 2 usage
// or parse errors. The JSON report comes from lint.WriteJSON — the same
// serialization the govhdld /v1/lint endpoint uses, so the two surfaces emit
// byte-identical reports for the same design.
func runVet(o runOpts) int {
	usage := func(err error) int {
		fmt.Fprintln(os.Stderr, "pvsim:", err)
		return 2
	}
	proto, err := runopts.ParseProtocol(o.Protocol)
	if err != nil {
		return usage(err)
	}
	if err := o.Opts.Validate(proto); err != nil {
		return usage(err)
	}
	if len(o.files) == 0 {
		return usage(fmt.Errorf("-vet needs VHDL files to analyze"))
	}
	var dfs []*vhdl.DesignFile
	for _, f := range o.files {
		src, err := os.ReadFile(f)
		if err != nil {
			return usage(err)
		}
		df, err := vhdl.Parse(f, string(src))
		if err != nil {
			return usage(err)
		}
		dfs = append(dfs, df)
	}
	diags := lint.Analyze(dfs...)
	if o.vetJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			return usage(err)
		}
	} else {
		lint.WriteText(os.Stderr, diags)
	}
	errs, warns := lint.Counts(diags)
	if errs > 0 || (o.VetStrict && warns > 0) {
		return 1
	}
	return 0
}

// Checkpoint files are written through internal/ckptio: a versioned,
// sha256-framed container written atomically, with the previous cuts kept
// as a generation lineage (-checkpoint-keep) so a corrupt or torn latest
// image falls back to the newest generation that still verifies.

func run(o runOpts) error {
	// buildDesign is reusable so -compare can construct an identical fresh
	// model for the sequential reference run.
	buildDesign := func(quiet bool) (*kernel.Design, *circuits.Circuit, vtime.Time, error) {
		switch {
		case o.Circuit != "":
			var bench *circuits.Circuit
			switch strings.ToLower(o.Circuit) {
			case "fsm":
				bench = circuits.BuildFSM(circuits.FSMOpts{})
			case "iir":
				bench = circuits.BuildIIR(circuits.IIROpts{})
			case "dct":
				bench = circuits.BuildDCT(circuits.DCTOpts{})
			default:
				return nil, nil, 0, fmt.Errorf("unknown circuit %q (fsm, iir or dct)", o.Circuit)
			}
			if !quiet {
				fmt.Printf("circuit: %v\n", bench)
			}
			return bench.Design, bench, bench.DefaultHorizon, nil
		case len(o.files) > 0:
			if o.Top == "" {
				return nil, nil, 0, fmt.Errorf("-top is required with VHDL files")
			}
			lib := vhdl.NewLibrary()
			for _, f := range o.files {
				src, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, 0, err
				}
				if err := lib.ParseAndAdd(f, string(src)); err != nil {
					return nil, nil, 0, err
				}
			}
			d, err := lib.Elaborate(o.Top)
			if err != nil {
				return nil, nil, 0, err
			}
			if !quiet {
				fmt.Printf("design: %s (%d signals + %d processes = %d LPs)\n",
					o.Top, d.NumSignals(), d.NumProcesses(), d.NumLPs())
			}
			return d, nil, 1 * vtime.MS, nil
		}
		return nil, nil, 0, fmt.Errorf("nothing to simulate: give VHDL files with -top, or -circuit")
	}

	design, bench, until, err := buildDesign(false)
	if err != nil {
		return err
	}

	if o.Until != "" {
		t, err := runopts.ParseTime(o.Until)
		if err != nil {
			return err
		}
		until = t
	}

	cfg := pdes.Config{
		Workers:         o.Workers,
		Lookahead:       o.Lookahead,
		CheckpointEvery: o.SaveEvery,
		GVTEvery:        o.gvtEvery,
		GVTAdapt:        o.gvtAdapt,
	}
	cfg.Protocol, err = runopts.ParseProtocol(o.Protocol)
	if err != nil {
		return err
	}
	if o.User {
		cfg.Ordering = pdes.OrderUserConsistent
	}
	if o.Throttle != "" {
		t, err := runopts.ParseTime(o.Throttle)
		if err != nil {
			return err
		}
		cfg.ThrottleWindow = t
	}

	distributed := o.Listen != "" || o.Connect != ""
	hostsController := o.Connect == "" // single-process, or the -listen hub

	if o.ckptFile != "" && o.CkptRounds <= 0 {
		o.CkptRounds = 1
	}
	if err := o.Validate(cfg.Protocol); err != nil {
		return err
	}
	cfg.StallTimeout = o.StallTimeout
	if o.StallPolicy == "force-opt" {
		cfg.StallPolicy = pdes.StallForceOpt
	}
	elastic := o.MigratePolicy == "on-death" || o.MigratePolicy == "balance"
	if o.MigratePolicy == "balance" {
		// Every distributed process needs the planner set (workers keep the
		// commit/load accounting only when migration is configured); the
		// controller is the one that actually emits plans.
		cfg.Migrate = pdes.NewBalancePlanner(pdes.BalanceConfig{})
	}
	cfg.StallDump = func(r *pdes.StallReport) { fmt.Fprint(os.Stderr, r.String()) }
	cfg.MemBudget = o.MemBudget

	// Checkpoints (in-memory ones included) carry gob-encoded event payloads
	// and trace items; make sure every wire type is registered first.
	if o.ckptFile != "" || o.Restore != "" || o.CkptRounds > 0 {
		transport.RegisterGob()
	}

	if o.CkptRounds > 0 {
		if cfg.Protocol == pdes.ProtoSequential {
			return fmt.Errorf("-checkpoint-rounds needs a parallel protocol (the sequential kernel has no GVT rounds)")
		}
		cfg.CheckpointRounds = o.CkptRounds
		if hostsController && o.ckptFile == "" && !o.Failover {
			return fmt.Errorf("-checkpoint-rounds needs -checkpoint-file on the controller process (or -failover, which keeps cuts in memory)")
		}
	}
	if distributed {
		cfg.Workers = o.Endpoints - 1
	}

	sup := &supervise.Supervisor{
		MaxFailovers: o.maxFailovers,
		OnFailover: func(attempt int, err error, ck *pdes.Checkpoint) {
			if ck != nil {
				fmt.Fprintf(os.Stderr, "pvsim: failover: attempt %d died (%v); absorbing all LPs locally from the checkpoint at GVT %v\n",
					attempt, err, ck.GVT)
			} else {
				fmt.Fprintf(os.Stderr, "pvsim: failover: attempt %d died (%v) before the first checkpoint cut; restarting locally from scratch\n",
					attempt, err)
			}
		},
	}
	if o.Restore != "" {
		// The checkpoint carries the committed prefix as replayable per-LP
		// logs: the restored run re-emits the full trace itself, so the
		// recorder starts empty (and failover seeds from the same cut).
		// SeedFromLineage verifies the frame checksum and falls back past
		// torn or corrupted newer generations; every skipped generation is
		// surfaced — a corrupt latest checkpoint deserves attention even
		// when an older one recovers the run.
		cf, gen, skipped, err := sup.SeedFromLineage(o.Restore)
		if err != nil {
			return err
		}
		for _, s := range skipped {
			fmt.Fprintf(os.Stderr, "pvsim: checkpoint generation skipped: %v\n", s)
		}
		if gen != o.Restore {
			fmt.Fprintf(os.Stderr, "pvsim: newest checkpoint unusable; falling back to generation %s\n", gen)
		}
		// Sharding is part of the checkpoint's identity: the cut was taken
		// over shard-level LPs, so the restored system must be sharded the
		// same way (Validate rejects explicit flags with -restore).
		o.Shards, o.Partition = cf.Shards, cf.Partition
		if o.Shards > 0 {
			fmt.Printf("restoring from %s (GVT %v, round %d, %d shards)\n", gen, cf.Ckpt.GVT, cf.Ckpt.Round, o.Shards)
		} else {
			fmt.Printf("restoring from %s (GVT %v, round %d)\n", gen, cf.Ckpt.GVT, cf.Ckpt.Round)
		}
	}

	// Resolve the partitioner once -restore has had its say: the same name
	// drives shard membership and (when given explicitly) LP-to-worker
	// placement. Sharded runs default to the topology-aware partitioner —
	// minimizing the cut is the point of sharding — while unsharded runs keep
	// the engine's round-robin default.
	shardPart := pdes.PartitionTopo
	switch strings.ToLower(o.Partition) {
	case "":
		// keep defaults
	case "rr", "roundrobin", "round-robin":
		shardPart = pdes.PartitionRoundRobin
		cfg.Partition = pdes.PartitionRoundRobin
	case "block":
		shardPart = pdes.PartitionBlock
		cfg.Partition = pdes.PartitionBlock
	case "topo":
		cfg.Partition = pdes.PartitionTopo
	default:
		return fmt.Errorf("unknown partition %q in checkpoint", o.Partition)
	}
	if o.Shards > 0 {
		fmt.Printf("sharding: %d shards, intra-shard sequential, %s membership\n",
			o.Shards, map[pdes.Partition]string{pdes.PartitionRoundRobin: "round-robin", pdes.PartitionBlock: "block", pdes.PartitionTopo: "topology-aware"}[shardPart])
	}

	// With an elastic migrate policy the transport maintains an epoch-numbered
	// cluster view; the on-death recovery decision (migrate onto the survivors
	// vs full absorb) reads the FIRST view that records a death, not the
	// latest: once the run fails, teardown drops every remaining connection
	// and the views that follow report those cascading disconnects, not the
	// fault. The survivor count at the fault instant is the policy input.
	var (
		viewMu    sync.Mutex
		deathView transport.View
	)
	firstDeathView := func() transport.View {
		viewMu.Lock()
		defer viewMu.Unlock()
		return deathView
	}

	// Every attempt gets fresh model state and a fresh recorder: attempt 0
	// is the primary (distributed or fault-injected) run, attempts >= 1 are
	// failover recoveries that absorb every LP into this process.
	var (
		sys *pdes.System
		rec *trace.Recorder
	)
	runAttempt := func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		if attempt > 0 {
			d, b, _, berr := buildDesign(true)
			if berr != nil {
				return nil, berr
			}
			design, bench = d, b
		}
		sys = design.Build()
		rec = trace.NewRecorder()
		// The engine runs the shard-level system while verification, -compare,
		// -trace and -vcd keep working on the original member-level system:
		// the wrapped sink re-attributes every record to its member LP.
		runSys := sys
		var sink pdes.TraceSink = rec
		if o.Shards > 0 {
			shd, serr := pdes.ShardSystem(sys, o.Shards, shardPart)
			if serr != nil {
				return nil, serr
			}
			runSys = shd.Sys()
			sink = shd.WrapSink(rec)
		}
		acfg := cfg
		acfg.Restore = restore
		if acfg.CheckpointRounds > 0 && (hostsController || attempt > 0) {
			acfg.CheckpointSink = func(ck *pdes.Checkpoint) error {
				sup.Checkpoint(ck)
				if o.ckptFile != "" {
					return ckptio.Write(o.ckptFile, o.ckptKeep, &ckptio.File{
						Ckpt: ck, Trace: rec.Entries(), Shards: o.Shards, Partition: o.Partition,
					})
				}
				return nil
			}
		}
		if attempt > 0 {
			// Recovery run: same partition, same config, local fabric. The
			// worker count is NOT blindly inherited — the surviving host may
			// have fewer cores than the dead cluster had workers, so the
			// shape is clamped to GOMAXPROCS and, under -migrate-policy=
			// on-death, to the survivors of the first recorded death. The
			// checkpoint is remapped to the new shape; either way the
			// committed trace is the one the dead cluster would have emitted.
			avail := runtime.GOMAXPROCS(0)
			if o.MigratePolicy == "on-death" {
				v := firstDeathView()
				survivors, hostedW := 0, 0
				for _, m := range v.Members {
					if !m.Alive {
						continue
					}
					survivors++
					for _, ep := range m.Hosted {
						if ep != 0 {
							hostedW++
						}
					}
				}
				if w, migrate := supervise.SurvivorWorkers(acfg.Workers, hostedW, survivors, o.MinNodes); migrate {
					if w < avail {
						avail = w
					}
					fmt.Fprintf(os.Stderr, "pvsim: failover: migrating the dead node's LPs onto %d surviving workers (view epoch %d)\n",
						w, v.Epoch)
				} else {
					fmt.Fprintf(os.Stderr, "pvsim: failover: too few survivors (view epoch %d); absorbing every LP locally\n", v.Epoch)
				}
			}
			plan, perr := supervise.PlanRecovery(runSys, restore, acfg.Workers, avail, acfg.Partition)
			if perr != nil {
				return nil, perr
			}
			sup.RecordPlan(attempt, plan)
			if plan.Clamped {
				fmt.Fprintf(os.Stderr, "pvsim: failover: clamping %d workers to %d for the recovery run\n",
					acfg.Workers, plan.Workers)
			}
			acfg.Workers = plan.Workers
			acfg.Restore = plan.Restore
			return pdes.RunOn(runSys, acfg, until, sink, pdes.NewLocalFabric(acfg.Workers+1))
		}
		switch {
		case distributed:
			hosted, perr := runopts.ParseInts(o.hosted)
			if perr != nil || len(hosted) == 0 {
				return nil, fmt.Errorf("distributed mode needs -hosted (comma-separated endpoint ids)")
			}
			topts := []transport.Option{transport.WithHeartbeat(o.hbInterval, o.hbTimeout)}
			if elastic {
				topts = append(topts, transport.WithOnViewChange(func(v transport.View) {
					viewMu.Lock()
					if deathView.Epoch == 0 && v.AliveCount() < len(v.Members) {
						deathView = v
					}
					viewMu.Unlock()
					fmt.Fprintf(os.Stderr, "pvsim: cluster view epoch %d: %d/%d members alive\n",
						v.Epoch, v.AliveCount(), len(v.Members))
				}))
			}
			if o.FaultKillWrites > 0 {
				plan := faultinject.Plan{Seed: o.faultSeed, KillAfterWrites: o.FaultKillWrites}
				topts = append(topts, transport.WithConnWrapper(plan.Conn()))
				fmt.Printf("fault injection: killing this process's connection after %d writes\n", o.FaultKillWrites)
			}
			var node *transport.Node
			var terr error
			if o.Listen != "" {
				fmt.Printf("listening on %s for %d endpoints...\n", o.Listen, o.Endpoints)
				node, terr = transport.Listen(o.Listen, o.Endpoints, hosted, topts...)
			} else {
				node, terr = transport.Dial(o.Connect, o.Endpoints, hosted, topts...)
			}
			if terr != nil {
				return nil, terr
			}
			defer node.Close()
			return pdes.RunOn(runSys, acfg, until, sink, node.Endpoints())
		case o.FaultDieSends > 0 || o.FaultMuteSends > 0:
			plan := faultinject.Plan{Seed: o.faultSeed, DieAfterSends: o.FaultDieSends, MuteAfterSends: o.FaultMuteSends}
			eps, _ := faultinject.WrapFabric(pdes.NewLocalFabric(acfg.Workers+1), plan)
			if o.FaultDieSends > 0 {
				fmt.Printf("fault injection: fabric dies after %d sends from any endpoint (seed %d)\n",
					o.FaultDieSends, o.faultSeed)
			}
			if o.FaultMuteSends > 0 {
				fmt.Printf("fault injection: each endpoint goes silent after %d sends (seed %d)\n",
					o.FaultMuteSends, o.faultSeed)
			}
			return pdes.RunOn(runSys, acfg, until, sink, eps)
		case cfg.Protocol == pdes.ProtoSequential:
			return pdes.RunSequential(sys, until, rec)
		default:
			return pdes.Run(runSys, acfg, until, sink)
		}
	}

	var res *pdes.Result
	if o.Failover {
		res, err = sup.Run(runAttempt)
	} else {
		res, err = runAttempt(0, sup.Latest())
	}
	if err != nil {
		return err
	}

	fmt.Printf("simulated to %v in %v (GVT %v)\n", until, res.Wall.Round(1e6), res.GVT)
	if o.showStats {
		fmt.Printf("metrics: %v\n", res.Metrics)
		if o.MemBudget > 0 {
			fmt.Printf("memory: peak tracked optimistic bytes %d (budget %d)\n", res.MemPeak, o.MemBudget)
		}
		if res.Makespan > 0 {
			fmt.Printf("modeled makespan: %.0f cost units\n", res.Makespan)
		}
	}
	if bench != nil && o.verify {
		if err := bench.Verify(until); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Println("verification: OK (matches the bit-true reference model)")
	}
	if o.compare {
		refDesign, _, _, err := buildDesign(true)
		if err != nil {
			return err
		}
		refSys := refDesign.Build()
		refRec := trace.NewRecorder()
		if _, err := pdes.RunSequential(refSys, until, refRec); err != nil {
			return err
		}
		if ok, diff := trace.Equal(sys, rec, refRec); !ok {
			return fmt.Errorf("trace comparison FAILED: %s", diff)
		}
		fmt.Printf("compare: OK (%d committed records identical to the sequential kernel)\n", rec.Len())
	}
	if o.showTrace {
		for _, line := range rec.Lines(sys) {
			fmt.Println(line)
		}
	}
	if o.vcd != "" {
		f, err := os.Create(o.vcd)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteVCD(f, sys, rec, design.Name); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.vcd)
	}
	return nil
}
