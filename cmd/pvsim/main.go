// Command pvsim is the parallel/distributed VHDL simulator CLI.
//
// Simulate a VHDL testbench on 8 workers with the dynamic protocol:
//
//	pvsim -top tb -protocol dynamic -workers 8 -until 10us design.vhd
//
// Simulate a built-in benchmark circuit and dump a VCD:
//
//	pvsim -circuit fsm -workers 4 -vcd fsm.vcd
//
// Distributed simulation across two machines (both need the same sources):
//
//	host A: pvsim -top tb -listen :9190 -endpoints 3 -hosted 0,1 design.vhd
//	host B: pvsim -top tb -connect hostA:9190 -endpoints 3 -hosted 2 design.vhd
//
// Fault-tolerant operation: checkpoint every committed GVT round and, after
// a crash, resume from the saved cut with the complete trace preserved:
//
//	pvsim -circuit fsm -workers 4 -checkpoint-file fsm.ck -checkpoint-rounds 1
//	pvsim -circuit fsm -workers 4 -restore fsm.ck
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/faultinject"
	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vhdl"
	"govhdl/internal/vtime"
)

// runOpts carries every CLI tunable into run.
type runOpts struct {
	top       string
	circuit   string
	protocol  string
	workers   int
	until     string
	lookahead bool
	user      bool
	throttle  string
	saveEvery int
	vcd       string
	showTrace bool
	showStats bool
	verify    bool
	compare   bool

	listen     string
	connect    string
	endpoints  int
	hosted     string
	gvtEvery   int
	hbInterval time.Duration
	hbTimeout  time.Duration

	ckptFile   string
	ckptRounds int
	restore    string

	faultSeed       int64
	faultKillWrites int
	faultDieSends   int

	files []string
}

func main() {
	var o runOpts
	flag.StringVar(&o.top, "top", "", "top entity to elaborate (with VHDL files)")
	flag.StringVar(&o.circuit, "circuit", "", "built-in benchmark circuit: fsm, iir or dct")
	flag.StringVar(&o.protocol, "protocol", "dynamic", "seq, cons, opt, mixed or dynamic")
	flag.IntVar(&o.workers, "workers", 1, "number of parallel workers")
	flag.StringVar(&o.until, "until", "", "simulation horizon, e.g. 100ns, 2us (default: circuit default or 1ms)")
	flag.BoolVar(&o.lookahead, "lookahead", false, "enable null messages (conservative lookahead)")
	flag.BoolVar(&o.user, "user", false, "user-consistent simultaneous-event ordering")
	flag.StringVar(&o.throttle, "throttle", "", "optimism bound beyond GVT, e.g. 40ns (0 = unbounded)")
	flag.IntVar(&o.saveEvery, "checkpoint", 1, "optimistic state-saving interval (events per snapshot)")
	flag.StringVar(&o.vcd, "vcd", "", "write a value change dump to this file")
	flag.BoolVar(&o.showTrace, "trace", false, "print committed value changes")
	flag.BoolVar(&o.showStats, "stats", true, "print protocol metrics")
	flag.BoolVar(&o.verify, "verify", true, "verify built-in circuits against their reference models")
	flag.BoolVar(&o.compare, "compare", false, "also run the sequential kernel and require identical committed traces")

	flag.StringVar(&o.listen, "listen", "", "distributed: listen address (this process hosts the controller)")
	flag.StringVar(&o.connect, "connect", "", "distributed: hub address to join")
	flag.IntVar(&o.endpoints, "endpoints", 0, "distributed: total endpoint count (controller + workers)")
	flag.StringVar(&o.hosted, "hosted", "", "distributed: comma-separated endpoint ids hosted here")
	flag.IntVar(&o.gvtEvery, "gvt-every", 0, "events per worker between GVT round requests (0 = engine default)")
	flag.DurationVar(&o.hbInterval, "hb-interval", time.Second, "distributed: heartbeat interval (<=0 disables liveness checking)")
	flag.DurationVar(&o.hbTimeout, "hb-timeout", 5*time.Second, "distributed: declare a silent peer dead after this long")

	flag.StringVar(&o.ckptFile, "checkpoint-file", "", "write a GVT-consistent checkpoint (with the trace-so-far) to this file, atomically, at every cut")
	flag.IntVar(&o.ckptRounds, "checkpoint-rounds", 0, "committed GVT rounds between checkpoint cuts (default 1 when -checkpoint-file is set; pass the same value to every distributed process)")
	flag.StringVar(&o.restore, "restore", "", "resume from a checkpoint file written by -checkpoint-file (every distributed process needs the file)")

	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault injection: PRNG seed (replayable schedules)")
	flag.IntVar(&o.faultKillWrites, "fault-kill-writes", 0, "fault injection, distributed: hard-close this process's connection after N writes")
	flag.IntVar(&o.faultDieSends, "fault-die-sends", 0, "fault injection, single-process: kill the fabric after N sends from any endpoint")
	flag.Parse()
	o.files = flag.Args()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "pvsim:", err)
		os.Exit(1)
	}
}

// checkpointFile is the on-disk restart image: the engine checkpoint plus
// the trace committed up to the cut, so a restored run ends with the same
// complete trace an uninterrupted run would have produced.
type checkpointFile struct {
	Ckpt  *pdes.Checkpoint
	Trace []trace.Entry
}

// writeCheckpointFile writes atomically (temp file + rename) so a crash
// mid-write never destroys the previous good checkpoint.
func writeCheckpointFile(path string, ck *pdes.Checkpoint, entries []trace.Entry) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&checkpointFile{Ckpt: ck, Trace: entries}); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func readCheckpointFile(path string) (*pdes.Checkpoint, []trace.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var cf checkpointFile
	if err := gob.NewDecoder(f).Decode(&cf); err != nil {
		return nil, nil, fmt.Errorf("corrupt checkpoint file %s: %w", path, err)
	}
	if cf.Ckpt == nil {
		return nil, nil, fmt.Errorf("checkpoint file %s holds no checkpoint", path)
	}
	return cf.Ckpt, cf.Trace, nil
}

func run(o runOpts) error {
	// buildDesign is reusable so -compare can construct an identical fresh
	// model for the sequential reference run.
	buildDesign := func(quiet bool) (*kernel.Design, *circuits.Circuit, vtime.Time, error) {
		switch {
		case o.circuit != "":
			var bench *circuits.Circuit
			switch strings.ToLower(o.circuit) {
			case "fsm":
				bench = circuits.BuildFSM(circuits.FSMOpts{})
			case "iir":
				bench = circuits.BuildIIR(circuits.IIROpts{})
			case "dct":
				bench = circuits.BuildDCT(circuits.DCTOpts{})
			default:
				return nil, nil, 0, fmt.Errorf("unknown circuit %q (fsm, iir or dct)", o.circuit)
			}
			if !quiet {
				fmt.Printf("circuit: %v\n", bench)
			}
			return bench.Design, bench, bench.DefaultHorizon, nil
		case len(o.files) > 0:
			if o.top == "" {
				return nil, nil, 0, fmt.Errorf("-top is required with VHDL files")
			}
			lib := vhdl.NewLibrary()
			for _, f := range o.files {
				src, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, 0, err
				}
				if err := lib.ParseAndAdd(f, string(src)); err != nil {
					return nil, nil, 0, err
				}
			}
			d, err := lib.Elaborate(o.top)
			if err != nil {
				return nil, nil, 0, err
			}
			if !quiet {
				fmt.Printf("design: %s (%d signals + %d processes = %d LPs)\n",
					o.top, d.NumSignals(), d.NumProcesses(), d.NumLPs())
			}
			return d, nil, 1 * vtime.MS, nil
		}
		return nil, nil, 0, fmt.Errorf("nothing to simulate: give VHDL files with -top, or -circuit")
	}

	design, bench, until, err := buildDesign(false)
	if err != nil {
		return err
	}

	if o.until != "" {
		t, err := parseTime(o.until)
		if err != nil {
			return err
		}
		until = t
	}

	cfg := pdes.Config{
		Workers:         o.workers,
		Lookahead:       o.lookahead,
		CheckpointEvery: o.saveEvery,
		GVTEvery:        o.gvtEvery,
	}
	switch strings.ToLower(o.protocol) {
	case "seq", "sequential":
		cfg.Protocol = pdes.ProtoSequential
	case "cons", "conservative":
		cfg.Protocol = pdes.ProtoConservative
	case "opt", "optimistic":
		cfg.Protocol = pdes.ProtoOptimistic
	case "mixed":
		cfg.Protocol = pdes.ProtoMixed
	case "dyn", "dynamic":
		cfg.Protocol = pdes.ProtoDynamic
	default:
		return fmt.Errorf("unknown protocol %q", o.protocol)
	}
	if o.user {
		cfg.Ordering = pdes.OrderUserConsistent
	}
	if o.throttle != "" {
		t, err := parseTime(o.throttle)
		if err != nil {
			return err
		}
		cfg.ThrottleWindow = t
	}

	distributed := o.listen != "" || o.connect != ""
	hostsController := o.connect == "" // single-process, or the -listen hub

	// Checkpoint/restore files carry gob-encoded event payloads and trace
	// items; make sure every wire type is registered before touching them.
	if o.ckptFile != "" || o.restore != "" {
		transport.RegisterGob()
	}

	sys := design.Build()
	rec := trace.NewRecorder()

	if o.ckptFile != "" && o.ckptRounds <= 0 {
		o.ckptRounds = 1
	}
	if o.ckptRounds > 0 {
		if cfg.Protocol == pdes.ProtoSequential {
			return fmt.Errorf("-checkpoint-rounds needs a parallel protocol (the sequential kernel has no GVT rounds)")
		}
		cfg.CheckpointRounds = o.ckptRounds
		if hostsController {
			if o.ckptFile == "" {
				return fmt.Errorf("-checkpoint-rounds needs -checkpoint-file on the controller process")
			}
			cfg.CheckpointSink = func(ck *pdes.Checkpoint) error {
				return writeCheckpointFile(o.ckptFile, ck, rec.Entries())
			}
		}
	}
	if o.restore != "" {
		ck, entries, err := readCheckpointFile(o.restore)
		if err != nil {
			return err
		}
		cfg.Restore = ck
		if hostsController {
			// The saved trace is replayed into the controller process's
			// recorder only, so distributed traces are not duplicated.
			rec.Preload(entries)
		}
		fmt.Printf("restoring from %s (GVT %v, round %d)\n", o.restore, ck.GVT, ck.Round)
	}

	var res *pdes.Result
	switch {
	case distributed:
		hosted, perr := parseInts(o.hosted)
		if perr != nil || len(hosted) == 0 {
			return fmt.Errorf("distributed mode needs -hosted (comma-separated endpoint ids)")
		}
		if o.endpoints < 2 {
			return fmt.Errorf("distributed mode needs -endpoints >= 2")
		}
		cfg.Workers = o.endpoints - 1
		topts := []transport.Option{transport.WithHeartbeat(o.hbInterval, o.hbTimeout)}
		if o.faultKillWrites > 0 {
			plan := faultinject.Plan{Seed: o.faultSeed, KillAfterWrites: o.faultKillWrites}
			topts = append(topts, transport.WithConnWrapper(plan.Conn()))
			fmt.Printf("fault injection: killing this process's connection after %d writes\n", o.faultKillWrites)
		}
		var node *transport.Node
		if o.listen != "" {
			fmt.Printf("listening on %s for %d endpoints...\n", o.listen, o.endpoints)
			node, err = transport.Listen(o.listen, o.endpoints, hosted, topts...)
		} else {
			node, err = transport.Dial(o.connect, o.endpoints, hosted, topts...)
		}
		if err != nil {
			return err
		}
		defer node.Close()
		res, err = pdes.RunOn(sys, cfg, until, rec, node.Endpoints())
	case o.faultDieSends > 0:
		if cfg.Protocol == pdes.ProtoSequential {
			return fmt.Errorf("-fault-die-sends needs a parallel protocol")
		}
		plan := faultinject.Plan{Seed: o.faultSeed, DieAfterSends: o.faultDieSends}
		eps, _ := faultinject.WrapFabric(pdes.NewLocalFabric(cfg.Workers+1), plan)
		fmt.Printf("fault injection: fabric dies after %d sends from any endpoint (seed %d)\n",
			o.faultDieSends, o.faultSeed)
		res, err = pdes.RunOn(sys, cfg, until, rec, eps)
	case cfg.Protocol == pdes.ProtoSequential:
		res, err = pdes.RunSequential(sys, until, rec)
	default:
		res, err = pdes.Run(sys, cfg, until, rec)
	}
	if err != nil {
		return err
	}

	fmt.Printf("simulated to %v in %v (GVT %v)\n", until, res.Wall.Round(1e6), res.GVT)
	if o.showStats {
		fmt.Printf("metrics: %v\n", res.Metrics)
		if res.Makespan > 0 {
			fmt.Printf("modeled makespan: %.0f cost units\n", res.Makespan)
		}
	}
	if bench != nil && o.verify {
		if err := bench.Verify(until); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Println("verification: OK (matches the bit-true reference model)")
	}
	if o.compare {
		refDesign, _, _, err := buildDesign(true)
		if err != nil {
			return err
		}
		refSys := refDesign.Build()
		refRec := trace.NewRecorder()
		if _, err := pdes.RunSequential(refSys, until, refRec); err != nil {
			return err
		}
		if ok, diff := trace.Equal(sys, rec, refRec); !ok {
			return fmt.Errorf("trace comparison FAILED: %s", diff)
		}
		fmt.Printf("compare: OK (%d committed records identical to the sequential kernel)\n", rec.Len())
	}
	if o.showTrace {
		for _, line := range rec.Lines(sys) {
			fmt.Println(line)
		}
	}
	if o.vcd != "" {
		f, err := os.Create(o.vcd)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteVCD(f, sys, rec, design.Name); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.vcd)
	}
	return nil
}

// parseTime parses "100ns", "2us", "1ms", "42" (fs).
func parseTime(s string) (vtime.Time, error) {
	units := []struct {
		suffix string
		mult   vtime.Time
	}{
		{"sec", vtime.S}, {"ms", vtime.MS}, {"us", vtime.US},
		{"ns", vtime.NS}, {"ps", vtime.PS}, {"fs", vtime.FS},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseUint(strings.TrimSuffix(s, u.suffix), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("bad time %q", s)
			}
			return vtime.Time(n) * u.mult, nil
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (use e.g. 100ns)", s)
	}
	return vtime.Time(n), nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
