// Command pvsim is the parallel/distributed VHDL simulator CLI.
//
// Simulate a VHDL testbench on 8 workers with the dynamic protocol:
//
//	pvsim -top tb -protocol dynamic -workers 8 -until 10us design.vhd
//
// Simulate a built-in benchmark circuit and dump a VCD:
//
//	pvsim -circuit fsm -workers 4 -vcd fsm.vcd
//
// Distributed simulation across two machines (both need the same sources):
//
//	host A: pvsim -top tb -listen :9190 -endpoints 3 -hosted 0,1 design.vhd
//	host B: pvsim -top tb -connect hostA:9190 -endpoints 3 -hosted 2 design.vhd
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"govhdl/internal/circuits"
	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vhdl"
	"govhdl/internal/vtime"
)

func main() {
	var (
		top       = flag.String("top", "", "top entity to elaborate (with VHDL files)")
		circuit   = flag.String("circuit", "", "built-in benchmark circuit: fsm, iir or dct")
		protocol  = flag.String("protocol", "dynamic", "seq, cons, opt, mixed or dynamic")
		workers   = flag.Int("workers", 1, "number of parallel workers")
		untilStr  = flag.String("until", "", "simulation horizon, e.g. 100ns, 2us (default: circuit default or 1ms)")
		lookahead = flag.Bool("lookahead", false, "enable null messages (conservative lookahead)")
		user      = flag.Bool("user", false, "user-consistent simultaneous-event ordering")
		throttle  = flag.String("throttle", "", "optimism bound beyond GVT, e.g. 40ns (0 = unbounded)")
		ckpt      = flag.Int("checkpoint", 1, "optimistic state-saving interval")
		vcdPath   = flag.String("vcd", "", "write a value change dump to this file")
		showTrace = flag.Bool("trace", false, "print committed value changes")
		showStats = flag.Bool("stats", true, "print protocol metrics")
		verify    = flag.Bool("verify", true, "verify built-in circuits against their reference models")
		compare   = flag.Bool("compare", false, "also run the sequential kernel and require identical committed traces")

		listen    = flag.String("listen", "", "distributed: listen address (this process hosts the controller)")
		connect   = flag.String("connect", "", "distributed: hub address to join")
		endpoints = flag.Int("endpoints", 0, "distributed: total endpoint count (controller + workers)")
		hostedStr = flag.String("hosted", "", "distributed: comma-separated endpoint ids hosted here")
	)
	flag.Parse()

	if err := run(*top, *circuit, *protocol, *workers, *untilStr, *lookahead,
		*user, *throttle, *ckpt, *vcdPath, *showTrace, *showStats, *verify, *compare,
		*listen, *connect, *endpoints, *hostedStr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pvsim:", err)
		os.Exit(1)
	}
}

func run(top, circuit, protocol string, workers int, untilStr string,
	lookahead, user bool, throttle string, ckpt int, vcdPath string,
	showTrace, showStats, verify, compare bool,
	listen, connect string, endpoints int, hostedStr string, files []string) error {

	// buildDesign is reusable so -compare can construct an identical fresh
	// model for the sequential reference run.
	buildDesign := func(quiet bool) (*kernel.Design, *circuits.Circuit, vtime.Time, error) {
		switch {
		case circuit != "":
			var bench *circuits.Circuit
			switch strings.ToLower(circuit) {
			case "fsm":
				bench = circuits.BuildFSM(circuits.FSMOpts{})
			case "iir":
				bench = circuits.BuildIIR(circuits.IIROpts{})
			case "dct":
				bench = circuits.BuildDCT(circuits.DCTOpts{})
			default:
				return nil, nil, 0, fmt.Errorf("unknown circuit %q (fsm, iir or dct)", circuit)
			}
			if !quiet {
				fmt.Printf("circuit: %v\n", bench)
			}
			return bench.Design, bench, bench.DefaultHorizon, nil
		case len(files) > 0:
			if top == "" {
				return nil, nil, 0, fmt.Errorf("-top is required with VHDL files")
			}
			lib := vhdl.NewLibrary()
			for _, f := range files {
				src, err := os.ReadFile(f)
				if err != nil {
					return nil, nil, 0, err
				}
				if err := lib.ParseAndAdd(f, string(src)); err != nil {
					return nil, nil, 0, err
				}
			}
			d, err := lib.Elaborate(top)
			if err != nil {
				return nil, nil, 0, err
			}
			if !quiet {
				fmt.Printf("design: %s (%d signals + %d processes = %d LPs)\n",
					top, d.NumSignals(), d.NumProcesses(), d.NumLPs())
			}
			return d, nil, 1 * vtime.MS, nil
		}
		return nil, nil, 0, fmt.Errorf("nothing to simulate: give VHDL files with -top, or -circuit")
	}

	design, bench, until, err := buildDesign(false)
	if err != nil {
		return err
	}

	if untilStr != "" {
		t, err := parseTime(untilStr)
		if err != nil {
			return err
		}
		until = t
	}

	cfg := pdes.Config{
		Workers:         workers,
		Lookahead:       lookahead,
		CheckpointEvery: ckpt,
	}
	switch strings.ToLower(protocol) {
	case "seq", "sequential":
		cfg.Protocol = pdes.ProtoSequential
	case "cons", "conservative":
		cfg.Protocol = pdes.ProtoConservative
	case "opt", "optimistic":
		cfg.Protocol = pdes.ProtoOptimistic
	case "mixed":
		cfg.Protocol = pdes.ProtoMixed
	case "dyn", "dynamic":
		cfg.Protocol = pdes.ProtoDynamic
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
	if user {
		cfg.Ordering = pdes.OrderUserConsistent
	}
	if throttle != "" {
		t, err := parseTime(throttle)
		if err != nil {
			return err
		}
		cfg.ThrottleWindow = t
	}

	sys := design.Build()
	rec := trace.NewRecorder()

	var res *pdes.Result
	switch {
	case listen != "" || connect != "":
		hosted, perr := parseInts(hostedStr)
		if perr != nil || len(hosted) == 0 {
			return fmt.Errorf("distributed mode needs -hosted (comma-separated endpoint ids)")
		}
		if endpoints < 2 {
			return fmt.Errorf("distributed mode needs -endpoints >= 2")
		}
		cfg.Workers = endpoints - 1
		var node *transport.Node
		if listen != "" {
			fmt.Printf("listening on %s for %d endpoints...\n", listen, endpoints)
			node, err = transport.Listen(listen, endpoints, hosted)
		} else {
			node, err = transport.Dial(connect, endpoints, hosted)
		}
		if err != nil {
			return err
		}
		defer node.Close()
		res, err = pdes.RunOn(sys, cfg, until, rec, node.Endpoints())
	case cfg.Protocol == pdes.ProtoSequential:
		res, err = pdes.RunSequential(sys, until, rec)
	default:
		res, err = pdes.Run(sys, cfg, until, rec)
	}
	if err != nil {
		return err
	}

	fmt.Printf("simulated to %v in %v (GVT %v)\n", until, res.Wall.Round(1e6), res.GVT)
	if showStats {
		fmt.Printf("metrics: %v\n", res.Metrics)
		if res.Makespan > 0 {
			fmt.Printf("modeled makespan: %.0f cost units\n", res.Makespan)
		}
	}
	if bench != nil && verify {
		if err := bench.Verify(until); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Println("verification: OK (matches the bit-true reference model)")
	}
	if compare {
		refDesign, _, _, err := buildDesign(true)
		if err != nil {
			return err
		}
		refSys := refDesign.Build()
		refRec := trace.NewRecorder()
		if _, err := pdes.RunSequential(refSys, until, refRec); err != nil {
			return err
		}
		if ok, diff := trace.Equal(sys, rec, refRec); !ok {
			return fmt.Errorf("trace comparison FAILED: %s", diff)
		}
		fmt.Printf("compare: OK (%d committed records identical to the sequential kernel)\n", rec.Len())
	}
	if showTrace {
		for _, line := range rec.Lines(sys) {
			fmt.Println(line)
		}
	}
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteVCD(f, sys, rec, design.Name); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", vcdPath)
	}
	return nil
}

// parseTime parses "100ns", "2us", "1ms", "42" (fs).
func parseTime(s string) (vtime.Time, error) {
	units := []struct {
		suffix string
		mult   vtime.Time
	}{
		{"sec", vtime.S}, {"ms", vtime.MS}, {"us", vtime.US},
		{"ns", vtime.NS}, {"ps", vtime.PS}, {"fs", vtime.FS},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseUint(strings.TrimSuffix(s, u.suffix), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("bad time %q", s)
			}
			return vtime.Time(n) * u.mult, nil
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (use e.g. 100ns)", s)
	}
	return vtime.Time(n), nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
