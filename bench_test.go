package govhdl

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations for the design choices in DESIGN.md.
//
// Each iteration runs a complete verified simulation at a reduced ("smoke")
// scale so `go test -bench` stays fast; the custom "speedup" metric is the
// figure's y-axis (modeled sequential cost / modeled parallel makespan).
// Paper-scale regeneration — the actual figure data in EXPERIMENTS.md — is
// produced by cmd/benchfigs (or GOVHDL_PAPER=1 go test ./internal/figures).

import (
	"fmt"
	"testing"

	"govhdl/internal/circuits"
	"govhdl/internal/figures"
	"govhdl/internal/pdes"
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// speedupBench measures one (circuit, protocol, workers) cell.
func speedupBench(b *testing.B, build func() *circuits.Circuit, until vtime.Time, cfg pdes.Config) {
	b.Helper()
	// Sequential baseline measured once per benchmark.
	seq := build()
	seqRes, err := pdes.RunSequential(seq.Design.Build(), until, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := seq.Verify(until); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var speedup float64
	var events uint64
	for i := 0; i < b.N; i++ {
		c := build()
		if cfg.ThrottleWindow == 0 && cfg.Protocol != pdes.ProtoConservative {
			cfg.ThrottleWindow = 4 * c.ClockHalf
		}
		res, err := pdes.Run(c.Design.Build(), cfg, until, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.Verify(until); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		speedup = seqRes.Makespan / res.Makespan
		events = res.Metrics.Events
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(events), "events/op")
}

func figureBench(b *testing.B, circuit func(figures.Scale) (func() *circuits.Circuit, vtime.Time)) {
	b.Helper()
	build, until := circuit(figures.ScaleSmoke)
	for _, cs := range figures.PaperConfigs() {
		for _, w := range []int{1, 2, 4, 8, 16} {
			cfg := cs.Cfg
			cfg.Workers = w
			b.Run(fmt.Sprintf("%s/w%d", cs.Name, w), func(b *testing.B) {
				speedupBench(b, build, until, cfg)
			})
		}
	}
}

// BenchmarkFig6FSM regenerates the shape of the paper's Fig. 6: speedup of
// the zero-delay FSM ensemble under the four protocol configurations.
func BenchmarkFig6FSM(b *testing.B) { figureBench(b, figures.FSMCircuit) }

// BenchmarkFig8IIR regenerates the shape of Fig. 8: the gate-level
// Gray-Markel lattice IIR filter.
func BenchmarkFig8IIR(b *testing.B) { figureBench(b, figures.IIRCircuit) }

// BenchmarkFig10DCT regenerates the shape of Fig. 10: the gate-level DCT
// processor.
func BenchmarkFig10DCT(b *testing.B) { figureBench(b, figures.DCTCircuit) }

// BenchmarkFig4 regenerates the Fig. 4 table cells: arbitrary vs.
// user-consistent simultaneous-event handling, with and without lookahead.
func BenchmarkFig4(b *testing.B) {
	cells := []struct {
		name string
		cfg  pdes.Config
	}{
		{"cons-arb-nola", pdes.Config{Protocol: pdes.ProtoConservative}},
		{"cons-arb-la", pdes.Config{Protocol: pdes.ProtoConservative, Lookahead: true}},
		{"cons-user-la", pdes.Config{Protocol: pdes.ProtoConservative, Ordering: pdes.OrderUserConsistent, Lookahead: true}},
		{"opt-arb", pdes.Config{Protocol: pdes.ProtoOptimistic}},
		{"opt-user", pdes.Config{Protocol: pdes.ProtoOptimistic, Ordering: pdes.OrderUserConsistent}},
	}
	circuitsUnder := []struct {
		name    string
		circuit func(figures.Scale) (func() *circuits.Circuit, vtime.Time)
	}{
		{"FSM", figures.FSMCircuit},
		{"IIR", figures.IIRCircuit},
		{"DCT", figures.DCTCircuit},
	}
	for _, cu := range circuitsUnder {
		build, until := cu.circuit(figures.ScaleSmoke)
		for _, cell := range cells {
			cfg := cell.cfg
			cfg.Workers = 16
			b.Run(cu.name+"/"+cell.name, func(b *testing.B) {
				speedupBench(b, build, until, cfg)
			})
		}
	}
}

// BenchmarkAblationCheckpoint sweeps the optimistic state-saving interval
// (DESIGN.md: checkpoint interval with coast-forward on rollback).
func BenchmarkAblationCheckpoint(b *testing.B) {
	build, until := figures.FSMCircuit(figures.ScaleSmoke)
	for _, ck := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("every%d", ck), func(b *testing.B) {
			speedupBench(b, build, until, pdes.Config{
				Protocol: pdes.ProtoOptimistic, Workers: 8, CheckpointEvery: ck,
			})
		})
	}
}

// BenchmarkAblationPartition compares the paper's naive round-robin
// partitioning with contiguous block partitioning.
func BenchmarkAblationPartition(b *testing.B) {
	build, until := figures.IIRCircuit(figures.ScaleSmoke)
	for _, p := range []struct {
		name string
		p    pdes.Partition
	}{{"roundrobin", pdes.PartitionRoundRobin}, {"block", pdes.PartitionBlock}} {
		b.Run(p.name, func(b *testing.B) {
			speedupBench(b, build, until, pdes.Config{
				Protocol: pdes.ProtoDynamic, Workers: 8, Partition: p.p,
			})
		})
	}
}

// BenchmarkAblationGVTPeriod sweeps the GVT round trigger threshold.
func BenchmarkAblationGVTPeriod(b *testing.B) {
	build, until := figures.FSMCircuit(figures.ScaleSmoke)
	for _, period := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("every%d", period), func(b *testing.B) {
			speedupBench(b, build, until, pdes.Config{
				Protocol: pdes.ProtoOptimistic, Workers: 8, GVTEvery: period,
			})
		})
	}
}

// BenchmarkAblationThrottle sweeps the optimism bound (memory window).
func BenchmarkAblationThrottle(b *testing.B) {
	buildF, until := figures.FSMCircuit(figures.ScaleSmoke)
	probe := buildF()
	for _, mult := range []vtime.Time{2, 4, 16} {
		b.Run(fmt.Sprintf("window%dxHalf", mult), func(b *testing.B) {
			speedupBench(b, buildF, until, pdes.Config{
				Protocol: pdes.ProtoOptimistic, Workers: 8,
				ThrottleWindow: mult * probe.ClockHalf,
			})
		})
	}
}

// wallClockBench measures real host performance of one verified run per
// iteration: ns/event and allocs/event, the numbers BENCH_wallclock.json
// tracks across PRs (speedupBench above reports the modeled makespan instead).
func wallClockBench(b *testing.B, circuit string, cs figures.ConfigSpec, workers int) {
	b.Helper()
	var byName func(figures.Scale) (func() *circuits.Circuit, vtime.Time)
	for _, wc := range figures.WallClockCircuits() {
		if wc.Name == circuit {
			byName = wc.Circuit
		}
	}
	if byName == nil {
		b.Fatalf("unknown wall-clock circuit %q", circuit)
	}
	build, until := byName(figures.ScaleSmoke)
	var last stats.WallClockPoint
	for i := 0; i < b.N; i++ {
		p, err := figures.MeasureWallClock(build, until, circuit, cs, workers)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	b.ReportMetric(last.NsPerEvent, "ns/event")
	b.ReportMetric(last.AllocsPerEvent, "allocs/event")
	b.ReportMetric(last.BytesPerEvent, "B/event")
	b.ReportMetric(float64(last.Events), "events/op")
}

// BenchmarkWallClockFSM measures the FSM ensemble under every protocol,
// including the acceptance-gate cell: mixed protocol at smoke scale.
func BenchmarkWallClockFSM(b *testing.B) {
	for _, cs := range figures.WallClockConfigs() {
		workers := 4
		if cs.Cfg.Protocol == pdes.ProtoSequential {
			workers = 1
		}
		b.Run(cs.Name, func(b *testing.B) {
			wallClockBench(b, "FSM", cs, workers)
		})
	}
}

// BenchmarkWallClockIIR measures the gate-level IIR filter.
func BenchmarkWallClockIIR(b *testing.B) {
	for _, cs := range figures.WallClockConfigs() {
		workers := 4
		if cs.Cfg.Protocol == pdes.ProtoSequential {
			workers = 1
		}
		b.Run(cs.Name, func(b *testing.B) {
			wallClockBench(b, "IIR", cs, workers)
		})
	}
}

// BenchmarkSequentialKernel measures the raw sequential kernel event rate —
// the "1 processor execution (improved for sequential simulation)" baseline
// every speedup is measured against.
func BenchmarkSequentialKernel(b *testing.B) {
	build, until := figures.FSMCircuit(figures.ScaleSmoke)
	var events uint64
	for i := 0; i < b.N; i++ {
		c := build()
		res, err := pdes.RunSequential(c.Design.Build(), until, nil)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Metrics.Events
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkVHDLCompile measures front-end throughput (parse + elaborate).
func BenchmarkVHDLCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile("blinker", Source{Name: "b.vhd", Text: facadeSrc}); err != nil {
			b.Fatal(err)
		}
	}
}
