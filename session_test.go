package govhdl

import (
	"strings"
	"sync"
	"testing"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
)

func fsmFactory(machines int) ModelFactory {
	return func() (*Model, error) {
		return FromDesign(circuits.BuildFSM(circuits.FSMOpts{Machines: machines}).Design), nil
	}
}

// lineCollector accumulates streamed batches, serialized by the session.
type lineCollector struct {
	mu      sync.Mutex
	lines   []string
	batches int
}

func (c *lineCollector) fn() TraceFunc {
	return func(_ []trace.Entry, lines []string) {
		c.mu.Lock()
		c.lines = append(c.lines, lines...)
		c.batches++
		c.mu.Unlock()
	}
}

func (c *lineCollector) joined() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.lines, "\n")
}

func soloFSMTrace(t *testing.T, machines int, until Time) string {
	t.Helper()
	m, err := fsmFactory(machines)()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Simulate(Options{Protocol: Sequential, Until: until})
	if err != nil {
		t.Fatal(err)
	}
	return strings.Join(res.TraceLines(), "\n")
}

func TestSessionStreamsIdenticalTrace(t *testing.T) {
	const until = 1 * US
	want := soloFSMTrace(t, 2, until)

	s := NewSession(fsmFactory(2), SessionOptions{Options: Options{
		Protocol: Mixed, Workers: 2, Until: until,
	}})
	col := &lineCollector{}
	s.OnTrace(col.fn())
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if col.joined() != want {
		t.Fatalf("streamed trace diverged from solo sequential run (%d vs %d bytes)",
			len(col.joined()), len(want))
	}
	if got := strings.Join(res.TraceLines(), "\n"); got != want {
		t.Fatal("session Result trace diverged from solo run")
	}
	if col.batches < 2 {
		t.Fatalf("streaming was vacuous: %d batches", col.batches)
	}
}

func TestSessionFailoverPreservesStream(t *testing.T) {
	const until = 1 * US
	want := soloFSMTrace(t, 2, until)

	s := NewSession(fsmFactory(2), SessionOptions{Options: Options{
		Protocol: Mixed, Workers: 2, Until: until,
	}})
	// First attempt dies of an injected transport fault mid-run; the retry
	// replays deterministically and the stream must come out exact — no
	// gaps, no duplicates.
	attempts := 0
	s.fabric = func(n int) []pdes.Endpoint {
		attempts++
		eps := pdes.NewLocalFabric(n)
		if attempts == 1 {
			eps, _ = faultinject.WrapFabric(eps, faultinject.Plan{Seed: 7, DieAfterSends: 400})
		}
		return eps
	}
	col := &lineCollector{}
	s.OnTrace(col.fn())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("expected exactly one failover, got %d attempts", attempts)
	}
	if col.joined() != want {
		t.Fatal("streamed trace across failover diverged from solo run")
	}
}

func TestSessionDeadlineExceeded(t *testing.T) {
	s := NewSession(fsmFactory(2), SessionOptions{
		Options:  Options{Protocol: Optimistic, Workers: 2, Until: 1000 * MS},
		Deadline: 50 * time.Millisecond,
	})
	_, err := s.Run()
	if err == nil {
		t.Fatal("deadline did not fire")
	}
	if Classify(err) != KindDeadline {
		t.Fatalf("Classify(%v) = %v, want deadline", err, Classify(err))
	}
}

func TestSessionCancel(t *testing.T) {
	s := NewSession(fsmFactory(2), SessionOptions{Options: Options{
		Protocol: Optimistic, Workers: 2, Until: 1000 * MS,
	}})
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Cancel()
	}()
	_, err := s.Run()
	if Classify(err) != KindCanceled {
		t.Fatalf("Classify(%v) = %v, want canceled", err, Classify(err))
	}
	// Idempotent, including after completion.
	s.Cancel()
}

func TestSessionModelErrorClassified(t *testing.T) {
	const src = `entity dz is end entity;
architecture a of dz is
  signal x : integer := 0;
begin
  p : process begin
    x <= 1 / 0;
    wait;
  end process;
end architecture;`
	factory := func() (*Model, error) {
		return Compile("dz", Source{Name: "dz.vhd", Text: src})
	}
	for _, proto := range []Protocol{Sequential, Optimistic} {
		s := NewSession(factory, SessionOptions{Options: Options{
			Protocol: proto, Workers: 2, Until: 1 * US,
		}})
		_, err := s.Run()
		if err == nil {
			t.Fatalf("%v: model error not surfaced", proto)
		}
		if Classify(err) != KindModel {
			t.Fatalf("%v: Classify(%v) = %v, want model", proto, err, Classify(err))
		}
		if !strings.Contains(err.Error(), "division by zero") {
			t.Fatalf("%v: diagnostic lost: %v", proto, err)
		}
	}
}

func TestSessionCompileErrorClassified(t *testing.T) {
	factory := func() (*Model, error) {
		return Compile("x", Source{Name: "x.vhd", Text: "entity ; garbage"})
	}
	s := NewSession(factory, SessionOptions{Options: Options{Until: 1 * US}})
	_, err := s.Run()
	if err == nil {
		t.Fatal("compile error not surfaced")
	}
	if Classify(err) != KindModel {
		t.Fatalf("Classify(%v) = %v, want model", err, Classify(err))
	}
}

func TestSessionSingleUse(t *testing.T) {
	s := NewSession(fsmFactory(2), SessionOptions{Options: Options{
		Protocol: Sequential, Until: 100 * NS,
	}})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestModelNewSessionConvenience(t *testing.T) {
	m, err := fsmFactory(2)()
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(SessionOptions{Options: Options{Protocol: Sequential, Until: 100 * NS}})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
