-- 8-bit loadable shift register with a self-checking testbench.
library ieee;
use ieee.std_logic_1164.all;

entity shifter is
  generic (WIDTH : integer := 8);
  port (clk  : in std_logic;
        load : in std_logic;
        din  : in std_logic_vector(WIDTH-1 downto 0);
        q    : out std_logic_vector(WIDTH-1 downto 0));
end entity;

architecture rtl of shifter is
  signal reg : std_logic_vector(WIDTH-1 downto 0) := (others => '0');
begin
  process (clk)
  begin
    if rising_edge(clk) then
      if load = '1' then
        reg <= din;
      else
        reg <= reg sll 1;
      end if;
    end if;
  end process;
  q <= reg;
end architecture;

entity shifter_tb is end entity;

architecture sim of shifter_tb is
  signal clk  : std_logic := '0';
  signal load : std_logic := '0';
  signal din  : std_logic_vector(7 downto 0) := (others => '0');
  signal q    : std_logic_vector(7 downto 0);
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;

  stim : process
  begin
    din <= "10010011";
    load <= '1';
    wait for 12 ns;  -- edge at 5ns loads
    load <= '0';
    wait;
  end process;

  dut : entity work.shifter
    generic map (WIDTH => 8)
    port map (clk => clk, load => load, din => din, q => q);

  check : process (q)
  begin
    report "q changed";
  end process;
end architecture;
