-- Binary counter with Gray-code output and an assertion monitor: the Gray
-- output must change exactly one bit per clock cycle.
library ieee;
use ieee.std_logic_1164.all;

entity gray is end entity;

architecture sim of gray is
  signal clk  : std_logic := '0';
  signal bin  : std_logic_vector(3 downto 0) := "0000";
  signal code : std_logic_vector(3 downto 0) := "0000";
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;

  count : process (clk)
  begin
    if rising_edge(clk) then
      bin <= bin + 1;
    end if;
  end process;

  encode : code <= bin xor (bin srl 1);

  monitor : process (code)
    variable prev : std_logic_vector(3 downto 0) := "0000";
    variable diff : std_logic_vector(3 downto 0);
    variable ones : integer;
  begin
    diff := code xor prev;
    ones := 0;
    for i in 3 downto 0 loop
      if diff(i) = '1' then
        ones := ones + 1;
      end if;
    end loop;
    assert ones <= 1 report "gray code changed more than one bit" severity error;
    prev := code;
  end process;
end architecture;
